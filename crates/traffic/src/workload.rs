//! Flow and workload generation.
//!
//! A [`Workload`] is a deterministic, time-ordered packet sequence built
//! from per-flow specs: each flow opens with a SYN, carries data packets,
//! and (optionally) closes with FIN. Flow sizes follow a log-normal
//! distribution — the heavy tail reported for the Benson et al. datacenter
//! traces the paper replays — and a configurable fraction of flows carry
//! payloads matching the Snort rule set.

use std::f64::consts::TAU;
use std::net::{Ipv4Addr, SocketAddrV4};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use speedybox_packet::{FiveTuple, Packet, PacketBuilder, Protocol, TcpFlags};

use crate::payload::{synthesize, PayloadKind};

/// The classic IMIX frame sizes and their 7:4:1 weights.
const IMIX: [(usize, u32); 3] = [(64, 7), (576, 4), (1500, 1)];

/// Draws an IMIX payload length (frame size minus Ethernet+IPv4+TCP
/// headers).
fn imix_payload_len(rng: &mut impl Rng) -> usize {
    let total: u32 = IMIX.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for &(frame, w) in &IMIX {
        if pick < w {
            return frame.saturating_sub(54);
        }
        pick -= w;
    }
    unreachable!("weights exhausted")
}

/// One flow's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// The flow's 5-tuple.
    pub tuple: FiveTuple,
    /// Number of data packets (excluding SYN/FIN).
    pub data_packets: usize,
    /// Payload kind for the data packets.
    pub payload: PayloadKind,
    /// Arrival time of the first packet (ns since workload start).
    pub start_ns: u64,
    /// Inter-packet gap within the flow (ns).
    pub gap_ns: u64,
}

/// Workload generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of flows.
    pub flows: usize,
    /// Median data packets per flow (log-normal median = `exp(mu)`).
    pub median_packets: f64,
    /// Log-normal sigma; ~1.2 reproduces the mice/elephants mix of the
    /// datacenter trace.
    pub sigma: f64,
    /// Payload length of data packets (bytes).
    pub payload_len: usize,
    /// Patterns for suspicious flows (typically the Snort `content`s).
    pub suspicious_patterns: Vec<String>,
    /// Fraction of flows that carry a suspicious payload.
    pub suspicious_fraction: f64,
    /// Open each flow with a SYN and close it with a FIN.
    pub with_handshake: bool,
    /// Pad frames to at least this size (e.g. 64 for the paper's
    /// micro-benchmarks). `None` leaves frames at natural size.
    pub frame_pad: Option<usize>,
    /// Draw per-packet payload sizes from the classic IMIX mix (7:4:1 of
    /// 64 B / 576 B / 1500 B frames) instead of the fixed `payload_len`.
    pub imix: bool,
    /// Fraction of flows that are UDP (no handshake; cleaned up by idle
    /// aging rather than FIN).
    pub udp_fraction: f64,
    /// RNG seed (workloads are fully deterministic given the config).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            flows: 100,
            median_packets: 8.0,
            sigma: 1.2,
            payload_len: 256,
            suspicious_patterns: vec!["evil".into(), "XFIL".into(), "probe".into()],
            suspicious_fraction: 0.1,
            with_handshake: true,
            frame_pad: None,
            imix: false,
            udp_fraction: 0.0,
            seed: 0x5bee_d1b0,
        }
    }
}

/// A generated workload: flow specs plus the interleaved packet sequence.
///
/// ```
/// use speedybox_traffic::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig { flows: 10, seed: 1, ..WorkloadConfig::default() });
/// assert_eq!(w.flows.len(), 10);
/// // Deterministic: same config, same packets.
/// let w2 = Workload::generate(&WorkloadConfig { flows: 10, seed: 1, ..WorkloadConfig::default() });
/// assert_eq!(w.packets()[0].as_bytes(), w2.packets()[0].as_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-flow shapes, in creation order.
    pub flows: Vec<FlowSpec>,
    /// All packets with arrival timestamps, time-ordered.
    pub arrivals: Vec<(u64, Packet)>,
}

impl Workload {
    /// Generates the workload for `config`.
    ///
    /// # Panics
    /// Panics if `config.flows` exceeds the available port space (~60k).
    #[must_use]
    pub fn generate(config: &WorkloadConfig) -> Self {
        Self::generate_impl(config, &mut PacketBuilder::build)
    }

    /// [`Workload::generate`], building every packet directly into pooled
    /// buffers from `mag`. Byte-identical packets to `generate` (the RNG
    /// stream does not depend on where buffers come from).
    #[must_use]
    pub fn generate_with(config: &WorkloadConfig, mag: &mut speedybox_packet::Magazine) -> Self {
        Self::generate_impl(config, &mut |b| b.build_pooled(mag))
    }

    fn generate_impl(
        config: &WorkloadConfig,
        make: &mut dyn FnMut(&PacketBuilder) -> Packet,
    ) -> Self {
        assert!(config.flows < 60_000, "flow count exceeds source-port space");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mu = config.median_packets.max(1.0).ln();
        let mut flows = Vec::with_capacity(config.flows);
        for i in 0..config.flows {
            // Box-Muller for a standard normal; log-normal flow size.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let z = (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
            #[allow(clippy::cast_possible_truncation)] // rounded positive flow size
            let data_packets = (mu + config.sigma * z).exp().round().max(1.0) as usize;
            let payload = if rng.gen_bool(config.suspicious_fraction.clamp(0.0, 1.0))
                && !config.suspicious_patterns.is_empty()
            {
                let p =
                    &config.suspicious_patterns[rng.gen_range(0..config.suspicious_patterns.len())];
                PayloadKind::suspicious(p)
            } else {
                PayloadKind::Clean
            };
            #[allow(clippy::cast_possible_truncation)] // reduced mod 60000 (fits u16)
            let src_port = 1024 + (i as u16 % 60_000);
            #[allow(clippy::cast_possible_truncation)] // flow count bounds the octet
            let src_octet = (i / 60_000) as u8;
            let protocol = if rng.gen_bool(config.udp_fraction.clamp(0.0, 1.0)) {
                Protocol::Udp
            } else {
                Protocol::Tcp
            };
            let tuple = FiveTuple::new(
                Ipv4Addr::new(10, 2, src_octet, 1),
                src_port,
                Ipv4Addr::new(10, 99, 99, 99),
                80,
                protocol,
            );
            flows.push(FlowSpec {
                tuple,
                data_packets,
                payload,
                start_ns: rng.gen_range(0..1_000_000),
                gap_ns: rng.gen_range(500..5_000),
            });
        }
        let arrivals = Self::interleave(&flows, config, &mut rng, make);
        Self { flows, arrivals }
    }

    fn interleave(
        flows: &[FlowSpec],
        config: &WorkloadConfig,
        rng: &mut StdRng,
        make: &mut dyn FnMut(&PacketBuilder) -> Packet,
    ) -> Vec<(u64, Packet)> {
        let mut arrivals: Vec<(u64, Packet)> = Vec::new();
        for spec in flows {
            let src = SocketAddrV4::new(spec.tuple.src_ip, spec.tuple.src_port);
            let dst = SocketAddrV4::new(spec.tuple.dst_ip, spec.tuple.dst_port);
            let is_tcp = spec.tuple.protocol == Protocol::Tcp;
            let mut builder = if is_tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() };
            builder.src(src).dst(dst);
            if let Some(pad) = config.frame_pad {
                builder.pad_to(pad);
            }
            let mut ts = spec.start_ns;
            let mut seq = 0u32;
            if config.with_handshake && is_tcp {
                builder.flags(TcpFlags::SYN).seq(seq).payload(&[]);
                arrivals.push((ts, make(&builder)));
                ts += spec.gap_ns;
                seq += 1;
            }
            for _ in 0..spec.data_packets {
                let len = if config.imix { imix_payload_len(rng) } else { config.payload_len };
                let payload = synthesize(&spec.payload, len, rng);
                builder.flags(TcpFlags::ACK | TcpFlags::PSH).seq(seq).payload(&payload);
                arrivals.push((ts, make(&builder)));
                ts += spec.gap_ns;
                seq += 1;
            }
            if config.with_handshake && is_tcp {
                builder.flags(TcpFlags::FIN | TcpFlags::ACK).seq(seq).payload(&[]);
                arrivals.push((ts, make(&builder)));
            }
        }
        arrivals.sort_by_key(|(ts, _)| *ts);
        arrivals
    }

    /// Total packet count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True if the workload holds no packets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The packets without timestamps, in arrival order.
    #[must_use]
    pub fn packets(&self) -> Vec<Packet> {
        self.arrivals.iter().map(|(_, p)| p.clone()).collect()
    }

    /// [`Workload::packets`] as pooled deep copies through `mag` — the
    /// clone-for-rerun path that stays off the heap while the pool holds
    /// out.
    #[must_use]
    pub fn packets_pooled(&self, mag: &mut speedybox_packet::Magazine) -> Vec<Packet> {
        self.arrivals.iter().map(|(_, p)| mag.copy_packet(p)).collect()
    }

    /// Records the workload as a replayable [`speedybox_packet::trace::Trace`].
    #[must_use]
    pub fn to_trace(&self) -> speedybox_packet::trace::Trace {
        self.arrivals
            .iter()
            .map(|(ts, p)| speedybox_packet::trace::TraceRecord::capture(*ts, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig { flows: 20, median_packets: 5.0, ..WorkloadConfig::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a.len(), b.len());
        for ((ta, pa), (tb, pb)) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(ta, tb);
            assert_eq!(pa.as_bytes(), pb.as_bytes());
        }
    }

    #[test]
    fn pooled_generation_matches_heap_generation() {
        use speedybox_packet::{Magazine, PacketPool};
        let cfg = WorkloadConfig { imix: true, udp_fraction: 0.2, ..small_config() };
        let heap = Workload::generate(&cfg);
        let pool = std::sync::Arc::new(PacketPool::with_capacity(2048, 64));
        let mut mag = Magazine::new(std::sync::Arc::clone(&pool));
        let pooled = Workload::generate_with(&cfg, &mut mag);
        assert_eq!(heap.len(), pooled.len());
        for ((ta, pa), (tb, pb)) in heap.arrivals.iter().zip(&pooled.arrivals) {
            assert_eq!(ta, tb);
            assert_eq!(pa.as_bytes(), pb.as_bytes());
        }
        // Pooled copies of the arrivals are byte-identical too.
        let copies = pooled.packets_pooled(&mut mag);
        for (copy, (_, orig)) in copies.iter().zip(&pooled.arrivals) {
            assert_eq!(copy.as_bytes(), orig.as_bytes());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&small_config());
        let b = Workload::generate(&WorkloadConfig { seed: 99, ..small_config() });
        let same = a.len() == b.len()
            && a.arrivals
                .iter()
                .zip(&b.arrivals)
                .all(|((_, pa), (_, pb))| pa.as_bytes() == pb.as_bytes());
        assert!(!same);
    }

    #[test]
    fn flows_have_syn_data_fin_structure() {
        let w = Workload::generate(&small_config());
        let spec = &w.flows[0];
        // Collect this flow's packets in time order.
        let pkts: Vec<&Packet> = w
            .arrivals
            .iter()
            .map(|(_, p)| p)
            .filter(|p| p.five_tuple().unwrap() == spec.tuple)
            .collect();
        assert_eq!(pkts.len(), spec.data_packets + 2);
        assert!(pkts.first().unwrap().tcp_flags().syn());
        assert!(pkts.last().unwrap().tcp_flags().fin());
        for p in &pkts[1..pkts.len() - 1] {
            assert!(!p.tcp_flags().syn());
            assert!(!p.tcp_flags().fin());
        }
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let w = Workload::generate(&small_config());
        assert!(w.arrivals.windows(2).all(|x| x[0].0 <= x[1].0));
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let cfg = WorkloadConfig { flows: 1200, median_packets: 6.0, ..WorkloadConfig::default() };
        let w = Workload::generate(&cfg);
        let sizes: Vec<usize> = w.flows.iter().map(|f| f.data_packets).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let mut sorted = sizes;
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Log-normal: mean well above median (tail), median near config.
        assert!(mean > 1.3 * median, "mean {mean} vs median {median}");
        assert!((median - 6.0).abs() <= 3.0, "median {median} near configured 6");
        assert!(*sorted.last().unwrap() > 50, "elephants exist");
    }

    #[test]
    fn suspicious_fraction_respected() {
        let cfg =
            WorkloadConfig { flows: 1000, suspicious_fraction: 0.3, ..WorkloadConfig::default() };
        let w = Workload::generate(&cfg);
        let sus = w.flows.iter().filter(|f| !f.payload.is_clean()).count();
        assert!((250..=350).contains(&sus), "suspicious flows: {sus}");
    }

    #[test]
    fn zero_suspicious_fraction_is_all_clean() {
        let cfg =
            WorkloadConfig { flows: 50, suspicious_fraction: 0.0, ..WorkloadConfig::default() };
        let w = Workload::generate(&cfg);
        assert!(w.flows.iter().all(|f| f.payload.is_clean()));
    }

    #[test]
    fn frame_pad_enforced() {
        let cfg = WorkloadConfig {
            flows: 5,
            payload_len: 0,
            frame_pad: Some(64),
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&cfg);
        assert!(w.arrivals.iter().all(|(_, p)| p.len() >= 64));
    }

    #[test]
    fn no_handshake_mode() {
        let cfg = WorkloadConfig { flows: 3, with_handshake: false, ..small_config() };
        let w = Workload::generate(&cfg);
        assert!(w.arrivals.iter().all(|(_, p)| !p.tcp_flags().syn() && !p.tcp_flags().fin()));
    }

    #[test]
    fn distinct_flows_have_distinct_tuples() {
        use std::collections::HashSet;
        let w = Workload::generate(&small_config());
        let tuples: HashSet<_> = w.flows.iter().map(|f| f.tuple).collect();
        assert_eq!(tuples.len(), w.flows.len());
    }

    #[test]
    fn imix_mixes_packet_sizes() {
        let cfg = WorkloadConfig {
            flows: 60,
            imix: true,
            with_handshake: false,
            ..WorkloadConfig::default()
        };
        let w = Workload::generate(&cfg);
        use std::collections::HashSet;
        let sizes: HashSet<usize> = w.arrivals.iter().map(|(_, p)| p.len()).collect();
        // The three IMIX frame classes all appear (64-pad means small
        // frames land at exactly the minimum TCP frame size).
        assert!(sizes.len() >= 3, "IMIX should produce several sizes: {sizes:?}");
        assert!(w.arrivals.iter().any(|(_, p)| p.len() >= 1400), "1500 B class present");
        assert!(w.arrivals.iter().any(|(_, p)| p.len() <= 80), "64 B class present");
        // 7:4:1 weighting: small frames dominate.
        let small = w.arrivals.iter().filter(|(_, p)| p.len() <= 80).count();
        assert!(small * 2 > w.len(), "small frames should be the majority");
    }

    #[test]
    fn udp_fraction_mixes_protocols() {
        let cfg = WorkloadConfig { flows: 400, udp_fraction: 0.5, ..WorkloadConfig::default() };
        let w = Workload::generate(&cfg);
        let udp = w.flows.iter().filter(|f| f.tuple.protocol == Protocol::Udp).count();
        assert!((140..=260).contains(&udp), "~half UDP, got {udp}");
        // UDP flows have no SYN/FIN even with handshakes enabled.
        for (_, p) in &w.arrivals {
            if p.five_tuple().unwrap().protocol == Protocol::Udp {
                assert!(!p.tcp_flags().syn() && !p.tcp_flags().fin());
            }
        }
        // TCP flows still open and close properly.
        let tcp_spec = w.flows.iter().find(|f| f.tuple.protocol == Protocol::Tcp).unwrap();
        let tcp_pkts: Vec<_> =
            w.arrivals.iter().filter(|(_, p)| p.five_tuple().unwrap() == tcp_spec.tuple).collect();
        assert!(tcp_pkts.first().unwrap().1.tcp_flags().syn());
        assert!(tcp_pkts.last().unwrap().1.tcp_flags().fin());
    }

    #[test]
    fn trace_round_trip() {
        let w = Workload::generate(&small_config());
        let trace = w.to_trace();
        assert_eq!(trace.len(), w.len());
        let pkts = trace.packets().unwrap();
        assert_eq!(pkts[0].as_bytes(), w.arrivals[0].1.as_bytes());
    }
}
