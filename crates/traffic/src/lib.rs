//! Workload generation for the SpeedyBox evaluation.
//!
//! The paper replays "the popular datacenter trace" (Benson et al., IMC
//! 2010) whose payloads are nulled for anonymization, so the authors
//! "synthesize the testing traffic with customized payloads according to
//! the inspection rules in Snort" (§VII-B3). This crate does the same,
//! fully synthetically and deterministically:
//!
//! * [`workload`] draws flow sizes from a heavy-tailed (log-normal)
//!   distribution matching the trace's published character — most flows
//!   are mice, a few elephants carry most packets — and interleaves flow
//!   packet arrivals in time;
//! * [`payload`] synthesizes payloads, a controlled fraction of which
//!   contain the patterns the Snort rules match.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod payload;
pub mod replay;
pub mod workload;

pub use payload::PayloadKind;
pub use replay::{ReplaySchedule, WorkloadStats};
pub use workload::{FlowSpec, Workload, WorkloadConfig};
