//! The scripted fault plan DSL.
//!
//! A fault plan is a `;`-separated list of actions pinned to packet
//! indices of the **original** trace (so plans stay meaningful while the
//! shrinker removes packets):
//!
//! ```text
//! kill@12=backend-0      mark a Maglev backend unhealthy before packet 12
//! recover@40=backend-0   mark it healthy again
//! flip@20                toggle compiled ↔ interpreted execution (SUT only)
//! expire@30=4            evict flows idle for ≥ 4 classifier ticks (SUT only)
//! remove@25              remove the next packet's flow rule from the
//!                        Global MAT (SUT only; forces a slow-path reinstall)
//! churn@10..50           run install/remove churn from a second thread
//!                        between packets 10 and 50 (SUT only)
//! retire@35              force a reclamation pass over retired table
//!                        generations (SUT only; a memory operation that
//!                        must never change packet results)
//! evict@15=3             force-evict the 3 least-recently-seen flows with
//!                        full teardown (SUT only; models capacity-pressure
//!                        LRU eviction — evicted flows re-record on their
//!                        next packet, so output bytes never change)
//! pool@18=2              clamp the packet-buffer pool's retention capacity
//!                        to 2 buffers (SUT only; starves the pooled
//!                        substrate so takes fall back to the heap — a
//!                        memory-pressure event that must never change
//!                        packet results, only the pool_misses counter)
//! nfkill@20=1            crash NF 1 before packet 20 (SUT only): the chain
//!                        rolls back to its last checkpoint and replays the
//!                        in-flight log, and the crashed NF's consolidated
//!                        rules are quarantined until the matching recover
//! nfrecover@40=1         close NF 1's quarantine window — consolidated
//!                        rules may be installed and served again
//! snap@30                take an on-demand chain-consistent checkpoint
//!                        before packet 30 (SUT only)
//! ```
//!
//! Kill/recover apply to **both** the oracle and the SUT at the same
//! packet boundary — they model real control-plane events. The rest are
//! SUT-only perturbations that must be equivalence-preserving; the
//! harness exists to prove that they are.

/// One fault action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Mark a Maglev backend unhealthy (both sides).
    KillBackend(String),
    /// Mark a Maglev backend healthy (both sides).
    RecoverBackend(String),
    /// Toggle compiled ↔ interpreted rule execution (SUT only).
    FlipMode,
    /// Evict flows idle for at least this many classifier ticks (SUT
    /// only).
    ExpireIdle(u64),
    /// Remove the next packet's flow rule from the Global MAT (SUT only).
    RemoveNextFlowRule,
    /// Start the install/remove churn thread (SUT only).
    ChurnStart,
    /// Stop the churn thread.
    ChurnStop,
    /// Reclaim retired rule/flow-table generations (SUT only). Proves
    /// generation retirement is invisible to packet processing and that
    /// the retired backlog drains once readers go quiet.
    RetireGenerations,
    /// Force-evict this many least-recently-seen flows with full teardown
    /// (SUT only). Exercises the capacity-pressure LRU path: an evicted
    /// flow's next packet re-records via the slow path, so packet bytes
    /// must be unchanged.
    EvictOldest(u64),
    /// Clamp the SUT's packet-buffer pool retention capacity (SUT only).
    /// Models memory pressure on the pooled substrate: takes beyond the
    /// clamp fall back to plain heap allocation (counted as pool misses),
    /// which must be invisible to packet processing.
    PoolPressure(u64),
    /// Crash this NF (SUT only): rollback to the last chain-consistent
    /// checkpoint, replay the in-flight log, quarantine the NF's
    /// consolidated rules until the matching [`Fault::RecoverNf`]. The
    /// whole sequence must be invisible in packet bytes — that is the
    /// recovery protocol's correctness claim.
    KillNf(usize),
    /// Close an NF's quarantine window (SUT only).
    RecoverNf(usize),
    /// Take an on-demand chain-consistent checkpoint (SUT only).
    Snapshot,
}

/// A fault pinned to an original-trace packet index: it fires immediately
/// before the first surviving packet whose original index is ≥ `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAt {
    /// Original-trace packet index.
    pub at: usize,
    /// The action.
    pub fault: Fault,
}

/// An ordered fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults sorted by `at` (stable for equal indices).
    pub faults: Vec<FaultAt>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a plan from faults, sorting by index (stable).
    #[must_use]
    pub fn new(mut faults: Vec<FaultAt>) -> Self {
        faults.sort_by_key(|f| f.at);
        Self { faults }
    }

    /// Parses the DSL described in the module docs.
    ///
    /// # Errors
    /// Returns a message naming the offending clause.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for clause in text.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (verb, rest) =
                clause.split_once('@').ok_or_else(|| format!("missing '@' in {clause:?}"))?;
            match verb {
                "kill" | "recover" => {
                    let (at, name) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("missing '=<backend>' in {clause:?}"))?;
                    let at = parse_index(at, clause)?;
                    let fault = if verb == "kill" {
                        Fault::KillBackend(name.to_string())
                    } else {
                        Fault::RecoverBackend(name.to_string())
                    };
                    faults.push(FaultAt { at, fault });
                }
                "flip" => {
                    faults.push(FaultAt { at: parse_index(rest, clause)?, fault: Fault::FlipMode });
                }
                "expire" => {
                    let (at, idle) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("missing '=<idle>' in {clause:?}"))?;
                    let idle =
                        idle.parse::<u64>().map_err(|e| format!("bad idle in {clause:?}: {e}"))?;
                    faults.push(FaultAt {
                        at: parse_index(at, clause)?,
                        fault: Fault::ExpireIdle(idle),
                    });
                }
                "remove" => {
                    faults.push(FaultAt {
                        at: parse_index(rest, clause)?,
                        fault: Fault::RemoveNextFlowRule,
                    });
                }
                "evict" => {
                    let (at, k) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("missing '=<count>' in {clause:?}"))?;
                    let k =
                        k.parse::<u64>().map_err(|e| format!("bad count in {clause:?}: {e}"))?;
                    faults.push(FaultAt {
                        at: parse_index(at, clause)?,
                        fault: Fault::EvictOldest(k),
                    });
                }
                "pool" => {
                    let (at, cap) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("missing '=<capacity>' in {clause:?}"))?;
                    let cap = cap
                        .parse::<u64>()
                        .map_err(|e| format!("bad capacity in {clause:?}: {e}"))?;
                    faults.push(FaultAt {
                        at: parse_index(at, clause)?,
                        fault: Fault::PoolPressure(cap),
                    });
                }
                "retire" => {
                    faults.push(FaultAt {
                        at: parse_index(rest, clause)?,
                        fault: Fault::RetireGenerations,
                    });
                }
                "nfkill" | "nfrecover" => {
                    let (at, nf) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("missing '=<nf>' in {clause:?}"))?;
                    let nf =
                        nf.parse::<usize>().map_err(|e| format!("bad nf in {clause:?}: {e}"))?;
                    let fault =
                        if verb == "nfkill" { Fault::KillNf(nf) } else { Fault::RecoverNf(nf) };
                    faults.push(FaultAt { at: parse_index(at, clause)?, fault });
                }
                "snap" => {
                    faults.push(FaultAt { at: parse_index(rest, clause)?, fault: Fault::Snapshot });
                }
                "churn" => {
                    let (a, b) = rest
                        .split_once("..")
                        .ok_or_else(|| format!("missing '..' in {clause:?}"))?;
                    let (a, b) = (parse_index(a, clause)?, parse_index(b, clause)?);
                    if b < a {
                        return Err(format!("empty churn window in {clause:?}"));
                    }
                    faults.push(FaultAt { at: a, fault: Fault::ChurnStart });
                    faults.push(FaultAt { at: b, fault: Fault::ChurnStop });
                }
                _ => return Err(format!("unknown fault verb in {clause:?}")),
            }
        }
        Ok(Self::new(faults))
    }

    /// Renders the plan back to canonical DSL text. Churn start/stop pairs
    /// are re-joined in order; an unpaired start renders as an open-ended
    /// window ending at the same index (degenerate but parseable).
    #[must_use]
    pub fn to_dsl(&self) -> String {
        let mut clauses = Vec::new();
        let mut pending_churn: Vec<usize> = Vec::new();
        for f in &self.faults {
            match &f.fault {
                Fault::KillBackend(name) => clauses.push(format!("kill@{}={name}", f.at)),
                Fault::RecoverBackend(name) => clauses.push(format!("recover@{}={name}", f.at)),
                Fault::FlipMode => clauses.push(format!("flip@{}", f.at)),
                Fault::ExpireIdle(idle) => clauses.push(format!("expire@{}={idle}", f.at)),
                Fault::RemoveNextFlowRule => clauses.push(format!("remove@{}", f.at)),
                Fault::RetireGenerations => clauses.push(format!("retire@{}", f.at)),
                Fault::EvictOldest(k) => clauses.push(format!("evict@{}={k}", f.at)),
                Fault::PoolPressure(cap) => clauses.push(format!("pool@{}={cap}", f.at)),
                Fault::KillNf(nf) => clauses.push(format!("nfkill@{}={nf}", f.at)),
                Fault::RecoverNf(nf) => clauses.push(format!("nfrecover@{}={nf}", f.at)),
                Fault::Snapshot => clauses.push(format!("snap@{}", f.at)),
                Fault::ChurnStart => pending_churn.push(f.at),
                Fault::ChurnStop => {
                    let start = pending_churn.pop().unwrap_or(f.at);
                    clauses.push(format!("churn@{start}..{}", f.at));
                }
            }
        }
        for start in pending_churn {
            clauses.push(format!("churn@{start}..{start}"));
        }
        clauses.join(";")
    }

    /// True when no faults are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

fn parse_index(text: &str, clause: &str) -> Result<usize, String> {
    text.trim().parse::<usize>().map_err(|e| format!("bad index in {clause:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_verb() {
        let dsl =
            "kill@12=backend-0;recover@40=backend-0;flip@20;expire@30=4;remove@25;churn@10..50;retire@55;evict@15=3;pool@18=2;nfkill@20=1;nfrecover@40=1;snap@30";
        let plan = FaultPlan::parse(dsl).unwrap();
        assert_eq!(plan.faults.len(), 13);
        let re = FaultPlan::parse(&plan.to_dsl()).unwrap();
        assert_eq!(re, plan);
    }

    #[test]
    fn nf_verbs_parse_and_render() {
        let plan = FaultPlan::parse("nfkill@20=1;nfrecover@40=1;snap@30").unwrap();
        assert_eq!(plan.faults[0].fault, Fault::KillNf(1));
        assert_eq!(plan.faults[1].fault, Fault::Snapshot);
        assert_eq!(plan.faults[2].fault, Fault::RecoverNf(1));
        assert_eq!(plan.to_dsl(), "nfkill@20=1;snap@30;nfrecover@40=1");
        assert!(FaultPlan::parse("nfkill@20").is_err());
        assert!(FaultPlan::parse("nfrecover@20=x").is_err());
        assert!(FaultPlan::parse("snap@x").is_err());
    }

    #[test]
    fn evict_parses_and_renders() {
        let plan = FaultPlan::parse("evict@15=3").unwrap();
        assert_eq!(plan.faults[0].fault, Fault::EvictOldest(3));
        assert_eq!(plan.to_dsl(), "evict@15=3");
        assert!(FaultPlan::parse("evict@15").is_err());
        assert!(FaultPlan::parse("evict@15=x").is_err());
    }

    #[test]
    fn pool_parses_and_renders() {
        let plan = FaultPlan::parse("pool@18=2").unwrap();
        assert_eq!(plan.faults[0].fault, Fault::PoolPressure(2));
        assert_eq!(plan.to_dsl(), "pool@18=2");
        assert!(FaultPlan::parse("pool@18").is_err());
        assert!(FaultPlan::parse("pool@18=x").is_err());
    }

    #[test]
    fn retire_parses_and_renders() {
        let plan = FaultPlan::parse("retire@7").unwrap();
        assert_eq!(plan.faults[0].fault, Fault::RetireGenerations);
        assert_eq!(plan.to_dsl(), "retire@7");
        assert!(FaultPlan::parse("retire@x").is_err());
    }

    #[test]
    fn sorts_by_index() {
        let plan = FaultPlan::parse("flip@30;kill@5=b;remove@10").unwrap();
        let ats: Vec<usize> = plan.faults.iter().map(|f| f.at).collect();
        assert_eq!(ats, vec![5, 10, 30]);
    }

    #[test]
    fn rejects_malformed_clauses() {
        assert!(FaultPlan::parse("kill@12").is_err());
        assert!(FaultPlan::parse("flip@x").is_err());
        assert!(FaultPlan::parse("churn@9..3").is_err());
        assert!(FaultPlan::parse("teleport@1").is_err());
        assert!(FaultPlan::parse("expire@1=z").is_err());
    }

    #[test]
    fn empty_plan_round_trips() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert_eq!(FaultPlan::empty().to_dsl(), "");
    }
}
