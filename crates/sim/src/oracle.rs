//! The reference oracle: a deliberately naive single-threaded interpreter
//! of a service chain.
//!
//! No consolidation, no sharding, no compiled programs, no MATs — every
//! packet is parsed from its frame and walked through every NF's
//! `process` literally, exactly as the uninstrumented baseline chain
//! would. Its simplicity is the point: the oracle is small enough to
//! audit by eye, so a divergence indicts the consolidated runtime, not
//! the referee.
//!
//! Semantics mirrored from the platform baselines (`BessChain::original`
//! et al.), minus cycle accounting:
//!
//! * frames that fail `Packet::from_frame` are rejected before any NF
//!   sees them (the "NIC discard" path);
//! * the FID is tagged from the 5-tuple when parseable — FID collisions
//!   therefore alias per-flow NF state here exactly as they do on the
//!   baseline path;
//! * a `Drop` verdict stops the walk at that NF;
//! * FIN/RST notifies **every** NF's `flow_closed`, even when the packet
//!   itself was dropped mid-chain.

use speedybox_mat::OpCounter;
use speedybox_nf::{Nf, NfContext};
use speedybox_packet::Packet;

/// What the oracle decided for one input frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The frame did not parse as Ethernet/IPv4/L4; no NF ran.
    Rejected,
    /// The packet survived the whole chain; these are its output frame
    /// bytes.
    Delivered(Vec<u8>),
    /// The packet was dropped by the NF at this chain index.
    Dropped {
        /// Index of the dropping NF in the chain.
        nf: usize,
    },
}

/// A reference chain instance: owns the NFs and walks packets through
/// them one at a time.
pub struct Oracle {
    nfs: Vec<Box<dyn Nf>>,
    ops: OpCounter,
}

impl Oracle {
    /// Wraps a freshly built chain.
    #[must_use]
    pub fn new(nfs: Vec<Box<dyn Nf>>) -> Self {
        Self { nfs, ops: OpCounter::default() }
    }

    /// Processes one raw frame through the chain and returns the verdict.
    pub fn process_frame(&mut self, frame: &[u8]) -> OracleVerdict {
        let Ok(mut packet) = Packet::from_frame(frame) else {
            return OracleVerdict::Rejected;
        };
        // Ingress FID tagging, as the platform runtimes do; parse failures
        // here (non-IP payloads that still framed) leave the FID unset.
        if let Ok(tuple) = packet.five_tuple() {
            packet.set_fid(tuple.fid());
        }
        let mut dropped_at = None;
        for (i, nf) in self.nfs.iter_mut().enumerate() {
            let mut ctx = NfContext::baseline(&mut self.ops);
            if !nf.process(&mut packet, &mut ctx).survives() {
                dropped_at = Some(i);
                break;
            }
        }
        // Teardown fires regardless of the drop verdict — the baseline
        // platforms notify on FIN/RST even for packets dropped mid-chain.
        if packet.tcp_flags().closes_flow() {
            if let Some(fid) = packet.fid() {
                for nf in &mut self.nfs {
                    nf.flow_closed(fid);
                }
            }
        }
        match dropped_at {
            Some(nf) => OracleVerdict::Dropped { nf },
            None => OracleVerdict::Delivered(packet.as_bytes().to_vec()),
        }
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle").field("nfs", &self.nfs.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speedybox_platform::chains::build_chain;

    #[test]
    fn rejects_unparseable_frames() {
        let mut oracle = Oracle::new(build_chain("snort").unwrap());
        assert_eq!(oracle.process_frame(&[0u8; 9]), OracleVerdict::Rejected);
    }

    #[test]
    fn forwards_a_clean_packet_through_snort() {
        let mut oracle = Oracle::new(build_chain("snort").unwrap());
        let p = speedybox_packet::PacketBuilder::tcp().payload(b"hello").build();
        match oracle.process_frame(p.as_bytes()) {
            OracleVerdict::Delivered(bytes) => assert_eq!(bytes, p.as_bytes()),
            other => panic!("expected delivery, got {other:?}"),
        }
    }
}
