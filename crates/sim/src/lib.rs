#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Deterministic simulation harness for the SpeedyBox runtime.
//!
//! The harness pits the consolidated runtime (sharded classifier, Global
//! MAT, compiled micro-op programs, Event Table) against a deliberately
//! naive **reference oracle** that executes every NF's header actions and
//! state functions literally, packet by packet, with none of the paper's
//! machinery. Both sides consume the same seeded packet trace; any
//! difference in output bytes, drop decisions, or end-of-run NF counters
//! is a **divergence**.
//!
//! Three layers:
//!
//! * [`oracle`] — the reference interpreter (baseline chain semantics);
//! * [`scenario`] + [`fault`] — seeded trace generation (malformed
//!   frames, FID collisions, mid-stream RST, SYN storms) and a scripted
//!   fault plan DSL (backend kills, compiled↔interpreted flips, flow
//!   eviction, install/remove churn from a second thread);
//! * [`runner`] + [`shrink`] + [`artifact`] — differential execution over
//!   both platform emulations, binary-search shrinking of any divergence
//!   to a minimal reproducer, and replayable JSON artifacts.
//!
//! Everything is deterministic given a seed: no wall-clock, no ambient
//! randomness. The only scheduled nondeterminism is the optional churn
//! thread, whose interference is equivalence-preserving by design (it
//! exercises shard locking and affinity-memo invalidation, not packet
//! semantics).

pub mod artifact;
pub mod fault;
pub mod json;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use fault::{Fault, FaultAt, FaultPlan};
pub use oracle::{Oracle, OracleVerdict};
pub use runner::{run_case, BugKind, Divergence, DivergenceKind, EnvKind, RunOutcome, SimCase};
pub use scenario::{generate, ScenarioConfig, TraceItem};
pub use shrink::shrink;
