//! Differential execution: the consolidated runtime vs the reference
//! oracle over one scenario, with scripted faults fired at packet
//! boundaries.
//!
//! The comparison is per-packet — drop decision and exact output frame
//! bytes — plus an end-of-run sweep over the NFs' observable state
//! (monitor counters, NAT mappings, Maglev connection tracking, Snort
//! alert log). One asymmetry is *excused* rather than reported: the
//! paper's Event Table fires a condition when the **next** packet of the
//! flow is prepared, so state-dependent drops (DoS block) land one packet
//! later on the fast path than on the literal baseline. When the oracle
//! drops and the SUT forwards a fast-path packet, the runner re-probes
//! the flow's rule through `GlobalMat::prepare`; if the freshly
//! event-checked rule now drops, the mismatch is the documented
//! one-packet lag, counted in [`RunOutcome::excused_lag`] and tolerated
//! in the counter sweep. The reverse direction (oracle forwards, SUT
//! drops) is never excused.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use speedybox_mat::OpCounter;
use speedybox_packet::{FiveTuple, Packet, Protocol};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::{build_chain_hooks, ChainHooks};
use speedybox_platform::metrics::{PathKind, ProcessedPacket};
use speedybox_platform::onvm::OnvmChain;
use speedybox_platform::runtime::{SboxConfig, SpeedyBox};

use crate::fault::{Fault, FaultPlan};
use crate::oracle::{Oracle, OracleVerdict};
use crate::scenario::TraceItem;

/// Which platform emulation runs the SUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// BESS-style run-to-completion chain.
    Bess,
    /// OpenNetVM-style per-NF-core chain.
    Onvm,
}

impl EnvKind {
    /// Canonical lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EnvKind::Bess => "bess",
            EnvKind::Onvm => "onvm",
        }
    }

    /// Parses a name produced by [`EnvKind::as_str`].
    ///
    /// # Errors
    /// Unknown names.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "bess" => Ok(EnvKind::Bess),
            "onvm" => Ok(EnvKind::Onvm),
            other => Err(format!("unknown environment {other:?} (expected bess|onvm)")),
        }
    }
}

/// Deliberately seeded SUT bugs, for validating that the harness catches
/// and shrinks real defects (mutation testing of the referee itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// Emulate a consolidation that forgets the trailing IPv4 checksum
    /// fix-up: the checksum of every fast-path output frame is zeroed.
    SkipChecksumFix,
    /// Emulate an eviction with the teardown half-done: the classifier
    /// entry is removed but the Global MAT rule, Local MAT rules and
    /// Event Table conditions are "forgotten" (the §VI-B hazard). The
    /// flow's next packet re-records on the slow path and the stale
    /// Local-MAT rules double up, corrupting the re-consolidated rule.
    EvictOrdering,
    /// Emulate a recovery that rolls the chain back to its checkpoint but
    /// "forgets" to replay the in-flight log: every packet processed since
    /// the last checkpoint vanishes from NF state, which the end-of-run
    /// counter sweep must flag.
    SkipSnapshotReplay,
}

impl BugKind {
    /// Canonical name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BugKind::SkipChecksumFix => "skip-checksum-fix",
            BugKind::EvictOrdering => "evict-ordering",
            BugKind::SkipSnapshotReplay => "skip-snapshot-replay",
        }
    }

    /// Parses a name produced by [`BugKind::as_str`].
    ///
    /// # Errors
    /// Unknown names.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "skip-checksum-fix" => Ok(BugKind::SkipChecksumFix),
            "evict-ordering" => Ok(BugKind::EvictOrdering),
            "skip-snapshot-replay" => Ok(BugKind::SkipSnapshotReplay),
            other => Err(format!(
                "unknown bug {other:?} (expected skip-checksum-fix|evict-ordering|skip-snapshot-replay)"
            )),
        }
    }
}

/// A fully self-contained, replayable simulation case.
#[derive(Debug, Clone)]
pub struct SimCase {
    /// Registry chain name.
    pub chain: String,
    /// Platform emulation.
    pub env: EnvKind,
    /// Start in compiled (micro-op) or interpreted rule execution.
    pub compiled: bool,
    /// Packets per `process_batch` call; 1 means the per-packet path.
    pub batch: usize,
    /// Symmetric run-to-completion workers (rounded up to a power of two
    /// by the runtime); 1 is the single-path default. Results must be
    /// identical at any count — the worker sweep proves it.
    pub workers: usize,
    /// Scenario seed (informational once `items` are materialized).
    pub seed: u64,
    /// Flow-table bound for the SUT (`SboxConfig::max_flows`); 0 means
    /// unbounded. Small values put the run under constant capacity-evict
    /// pressure: installs displace the least-recently-used flow, which
    /// must stay byte-equivalent (the displaced flow re-records through
    /// the slow path).
    pub max_flows: usize,
    /// Seeded SUT bug, if any.
    pub bug: Option<BugKind>,
    /// The packet trace.
    pub items: Vec<TraceItem>,
    /// The fault plan.
    pub faults: FaultPlan,
}

/// What kind of disagreement was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// One side dropped (or rejected) a packet the other forwarded.
    Verdict,
    /// Both forwarded, but the output frames differ.
    Bytes,
    /// Per-packet behaviour matched but end-of-run NF state did not.
    Counters,
}

impl DivergenceKind {
    /// Canonical name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::Verdict => "verdict",
            DivergenceKind::Bytes => "bytes",
            DivergenceKind::Counters => "counters",
        }
    }
}

/// A reported divergence.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the (possibly shrunk) `items` of the offending packet;
    /// for counter divergences, the last packet index.
    pub index: usize,
    /// Original-trace index of that packet.
    pub orig: usize,
    /// Category.
    pub kind: DivergenceKind,
    /// Human-readable evidence (verdicts, hex frames, counter values).
    pub detail: String,
}

/// The outcome of one differential run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// First divergence, if any.
    pub divergence: Option<Divergence>,
    /// Packets both sides delivered.
    pub delivered: usize,
    /// Packets both sides dropped.
    pub dropped: usize,
    /// Frames both sides rejected at parse.
    pub rejected: usize,
    /// Oracle-dropped packets the SUT forwarded under the documented
    /// one-packet Event Table lag.
    pub excused_lag: usize,
    /// FNV-1a hash over the SUT's verdict/output stream (stable across
    /// runs of the same case).
    pub output_hash: u64,
}

/// The SUT: either platform emulation behind one interface.
enum Sut {
    Bess(BessChain),
    Onvm(OnvmChain),
}

impl Sut {
    fn process(&mut self, packet: Packet) -> ProcessedPacket {
        match self {
            Sut::Bess(c) => c.process(packet),
            Sut::Onvm(c) => c.process(packet),
        }
    }

    fn process_batch(&mut self, packets: Vec<Packet>) -> Vec<ProcessedPacket> {
        match self {
            Sut::Bess(c) => c.process_batch(packets),
            Sut::Onvm(c) => c.process_batch(packets),
        }
    }

    fn sbox(&self) -> Option<&SpeedyBox> {
        match self {
            Sut::Bess(c) => c.sbox(),
            Sut::Onvm(c) => c.sbox(),
        }
    }

    fn set_compiled(&mut self, compiled: bool) {
        match self {
            Sut::Bess(c) => c.set_compiled(compiled),
            Sut::Onvm(c) => c.set_compiled(compiled),
        }
    }

    fn clamp_pool(&self, capacity: usize) {
        match self {
            Sut::Bess(c) => c.pool().set_capacity(capacity),
            Sut::Onvm(c) => c.pool().set_capacity(capacity),
        }
    }

    fn supervised(&self) -> bool {
        match self {
            Sut::Bess(c) => c.supervised(),
            Sut::Onvm(c) => c.supervised(),
        }
    }

    fn kill_nf(&mut self, nf: usize, replay: bool) -> usize {
        match self {
            Sut::Bess(c) => c.kill_nf(nf, replay),
            Sut::Onvm(c) => c.kill_nf(nf, replay),
        }
    }

    fn recover_nf(&mut self, nf: usize) {
        match self {
            Sut::Bess(c) => c.recover_nf(nf),
            Sut::Onvm(c) => c.recover_nf(nf),
        }
    }

    fn checkpoint_now(&mut self) {
        match self {
            Sut::Bess(c) => c.checkpoint_now(),
            Sut::Onvm(c) => c.checkpoint_now(),
        }
    }

    fn log_external(&mut self, event: Arc<dyn Fn() + Send + Sync>) {
        match self {
            Sut::Bess(c) => c.log_external(event),
            Sut::Onvm(c) => c.log_external(event),
        }
    }
}

/// The install/remove churn thread: hammers the Global MAT from a second
/// thread on FIDs provably disjoint from the trace, exercising shard
/// locking and rule-handle lifetime without perturbing packet semantics.
struct Churn {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<u64>,
}

impl Churn {
    fn start(sbox: &SpeedyBox, avoid: &HashSet<u32>) -> Self {
        let mut tuples = Vec::new();
        'search: for x in 0..=255u8 {
            for y in 1..=254u8 {
                let t = FiveTuple::new(
                    Ipv4Addr::new(10, 250, x, y),
                    7777,
                    Ipv4Addr::new(10, 250, 255, 254),
                    9999,
                    Protocol::Tcp,
                );
                if !avoid.contains(&t.fid().value()) {
                    tuples.push(t);
                    if tuples.len() == 8 {
                        break 'search;
                    }
                }
            }
        }
        let global = Arc::clone(&sbox.global);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut ops = OpCounter::default();
            let mut rounds = 0u64;
            while !thread_stop.load(Ordering::Relaxed) {
                for t in &tuples {
                    let fid = t.fid();
                    global.install(fid, &mut ops);
                    let _ = global.rule(fid);
                    global.remove_flow(fid);
                }
                rounds += 1;
                std::thread::yield_now();
            }
            rounds
        });
        Self { stop, handle }
    }

    fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or(0)
    }
}

/// Mutable per-run state threaded through the fault/flush machinery.
struct RunState {
    delivered: usize,
    dropped: usize,
    rejected: usize,
    excused: usize,
    hash: u64,
    compiled_now: bool,
    pending_remove: bool,
    churn: Option<Churn>,
}

impl RunState {
    fn hash_byte(&mut self, b: u8) {
        self.hash ^= u64::from(b);
        self.hash = self.hash.wrapping_mul(0x0100_0000_01b3);
    }

    fn hash_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash_byte(b);
        }
    }
}

/// Renders bytes as lowercase hex.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses lowercase/uppercase hex back to bytes.
///
/// # Errors
/// Odd length or non-hex characters.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

/// Runs one case to completion (or first divergence).
///
/// # Errors
/// Unknown chain name.
#[allow(clippy::too_many_lines)]
pub fn run_case(case: &SimCase) -> Result<RunOutcome, String> {
    let (oracle_nfs, oracle_hooks) = build_chain_hooks(&case.chain)?;
    let mut oracle = Oracle::new(oracle_nfs);
    let (sut_nfs, sut_hooks) = build_chain_hooks(&case.chain)?;
    let batch_cap = case.batch.max(1);
    let mut config = SboxConfig {
        compiled: case.compiled,
        batch_size: batch_cap,
        workers: case.workers.max(1),
        ..SboxConfig::default()
    };
    if case.max_flows > 0 {
        config.max_flows = case.max_flows;
    }
    // NF crash/restart verbs need supervision: a small interval keeps the
    // in-flight log (and therefore every kill's replay) non-trivial.
    let has_nf_faults = case
        .faults
        .faults
        .iter()
        .any(|f| matches!(f.fault, Fault::KillNf(_) | Fault::RecoverNf(_) | Fault::Snapshot));
    if has_nf_faults {
        config.checkpoint_interval = 32;
    }
    let mut sut = match case.env {
        EnvKind::Bess => Sut::Bess(BessChain::speedybox_with(sut_nfs, config)),
        EnvKind::Onvm => Sut::Onvm(OnvmChain::speedybox_with(sut_nfs, config)),
    };

    // Every FID the trace can touch, so churn provably stays disjoint.
    let used_fids: HashSet<u32> = case
        .items
        .iter()
        .filter_map(|i| Packet::from_frame(&i.frame).ok())
        .filter_map(|p| p.five_tuple().ok().map(|t| t.fid().value()))
        .collect();

    let mut st = RunState {
        delivered: 0,
        dropped: 0,
        rejected: 0,
        excused: 0,
        hash: 0xcbf2_9ce4_8422_2325,
        compiled_now: case.compiled,
        pending_remove: false,
        churn: None,
    };

    let mut divergence: Option<Divergence> = None;
    let mut pending: Vec<(usize, TraceItem)> = Vec::new();
    let mut fault_cursor = 0usize;
    let faults = &case.faults.faults;

    for (idx, item) in case.items.iter().enumerate() {
        while fault_cursor < faults.len() && faults[fault_cursor].at <= item.orig {
            if divergence.is_none() {
                divergence = flush(&mut pending, &mut sut, &mut oracle, &mut st, case, batch_cap);
            }
            apply_fault(
                &faults[fault_cursor].fault,
                &mut sut,
                &oracle_hooks,
                &sut_hooks,
                &mut st,
                &used_fids,
                case.bug,
            );
            fault_cursor += 1;
        }
        if divergence.is_some() {
            break;
        }
        pending.push((idx, item.clone()));
        if pending.len() >= batch_cap {
            divergence = flush(&mut pending, &mut sut, &mut oracle, &mut st, case, batch_cap);
            if divergence.is_some() {
                break;
            }
        }
    }
    if divergence.is_none() {
        divergence = flush(&mut pending, &mut sut, &mut oracle, &mut st, case, batch_cap);
    }
    // Remaining faults past the last packet (e.g. the churn window's end).
    while fault_cursor < faults.len() {
        apply_fault(
            &faults[fault_cursor].fault,
            &mut sut,
            &oracle_hooks,
            &sut_hooks,
            &mut st,
            &used_fids,
            case.bug,
        );
        fault_cursor += 1;
    }
    if let Some(churn) = st.churn.take() {
        churn.stop();
    }

    if divergence.is_none() {
        divergence = compare_hooks(&oracle_hooks, &sut_hooks, &st, case.items.len());
    }

    Ok(RunOutcome {
        divergence,
        delivered: st.delivered,
        dropped: st.dropped,
        rejected: st.rejected,
        excused_lag: st.excused,
        output_hash: st.hash,
    })
}

/// Applies one fault at a packet boundary (the pending batch has already
/// been flushed).
fn apply_fault(
    fault: &Fault,
    sut: &mut Sut,
    oracle_hooks: &ChainHooks,
    sut_hooks: &ChainHooks,
    st: &mut RunState,
    used_fids: &HashSet<u32>,
    bug: Option<BugKind>,
) {
    match fault {
        Fault::KillBackend(name) => {
            if let Some(m) = &oracle_hooks.maglev {
                m.fail_backend(name);
            }
            if let Some(m) = &sut_hooks.maglev {
                m.fail_backend(name);
                // Health flips mutate NF state outside the packet stream:
                // log them so a crash replay reproduces the flip in order.
                if sut.supervised() {
                    let (m, name) = (m.clone(), name.clone());
                    sut.log_external(Arc::new(move || m.fail_backend(&name)));
                }
            }
        }
        Fault::RecoverBackend(name) => {
            if let Some(m) = &oracle_hooks.maglev {
                m.recover_backend(name);
            }
            if let Some(m) = &sut_hooks.maglev {
                m.recover_backend(name);
                if sut.supervised() {
                    let (m, name) = (m.clone(), name.clone());
                    sut.log_external(Arc::new(move || m.recover_backend(&name)));
                }
            }
        }
        Fault::FlipMode => {
            st.compiled_now = !st.compiled_now;
            sut.set_compiled(st.compiled_now);
        }
        Fault::ExpireIdle(max_idle) => {
            if let Some(sbox) = sut.sbox() {
                sbox.expire_idle_flows(*max_idle);
            }
        }
        Fault::RemoveNextFlowRule => {
            st.pending_remove = true;
        }
        Fault::ChurnStart => {
            if st.churn.is_none() {
                if let Some(sbox) = sut.sbox() {
                    st.churn = Some(Churn::start(sbox, used_fids));
                }
            }
        }
        Fault::ChurnStop => {
            if let Some(churn) = st.churn.take() {
                churn.stop();
            }
        }
        Fault::RetireGenerations => {
            if let Some(sbox) = sut.sbox() {
                sbox.collect_generations();
            }
        }
        Fault::EvictOldest(k) => {
            if let Some(sbox) = sut.sbox() {
                let k = usize::try_from(*k).unwrap_or(usize::MAX);
                if bug == Some(BugKind::EvictOrdering) {
                    // Seeded bug: evict the classifier entry but "forget"
                    // the Global MAT / Local MAT / Event Table teardown.
                    // The victims' next packets re-record as initial and
                    // the stale Local-MAT rules duplicate.
                    sbox.classifier.evict_oldest(k);
                } else {
                    sbox.force_evict_flows(k);
                }
            }
        }
        Fault::PoolPressure(cap) => {
            // SUT-only memory pressure: clamp the buffer pool's retention
            // capacity. Subsequent takes beyond the clamp fall back to the
            // heap (counted as pool misses) — packet bytes must not change.
            sut.clamp_pool(usize::try_from(*cap).unwrap_or(usize::MAX));
        }
        Fault::KillNf(nf) => {
            // SUT-only crash: rollback + replay + quarantine window. With
            // the seeded recovery bug, the replay half is "forgotten".
            let replay = bug != Some(BugKind::SkipSnapshotReplay);
            sut.kill_nf(*nf, replay);
        }
        Fault::RecoverNf(nf) => {
            sut.recover_nf(*nf);
        }
        Fault::Snapshot => {
            sut.checkpoint_now();
        }
    }
}

/// Processes the pending batch through both sides and compares.
fn flush(
    pending: &mut Vec<(usize, TraceItem)>,
    sut: &mut Sut,
    oracle: &mut Oracle,
    st: &mut RunState,
    case: &SimCase,
    batch_cap: usize,
) -> Option<Divergence> {
    if pending.is_empty() {
        return None;
    }
    let batch: Vec<(usize, TraceItem)> = std::mem::take(pending);

    // A scripted rule eviction targets the first parseable packet of this
    // batch — the "next packet" at the time the fault fired.
    if st.pending_remove {
        for (_, item) in &batch {
            if let Ok(p) = Packet::from_frame(&item.frame) {
                if let Ok(t) = p.five_tuple() {
                    if let Some(sbox) = sut.sbox() {
                        sbox.remove_flow(t.fid());
                    }
                    st.pending_remove = false;
                    break;
                }
            }
        }
    }

    // SUT side first (batched or per-packet), results in input order.
    let parsed: Vec<Option<Packet>> =
        batch.iter().map(|(_, item)| Packet::from_frame(&item.frame).ok()).collect();
    let mut sut_results: Vec<Option<ProcessedPacket>> = Vec::with_capacity(batch.len());
    if batch_cap == 1 {
        for p in parsed {
            sut_results.push(p.map(|p| sut.process(p)));
        }
    } else {
        let live: Vec<Packet> = parsed.iter().flatten().cloned().collect();
        let mut processed = sut.process_batch(live).into_iter();
        for p in &parsed {
            sut_results.push(if p.is_some() { processed.next() } else { None });
        }
    }

    for ((idx, item), sut_out) in batch.iter().zip(sut_results) {
        let oracle_verdict = oracle.process_frame(&item.frame);
        if let Some(d) = compare_one(*idx, item, &oracle_verdict, sut_out, sut, st, case) {
            return Some(d);
        }
    }
    None
}

/// Compares one packet's fate on both sides, updating counters and the
/// output hash.
fn compare_one(
    idx: usize,
    item: &TraceItem,
    oracle_verdict: &OracleVerdict,
    sut_out: Option<ProcessedPacket>,
    sut: &Sut,
    st: &mut RunState,
    case: &SimCase,
) -> Option<Divergence> {
    let mk = |kind: DivergenceKind, detail: String| {
        Some(Divergence { index: idx, orig: item.orig, kind, detail })
    };
    match (oracle_verdict, sut_out) {
        (OracleVerdict::Rejected, None) => {
            st.rejected += 1;
            st.hash_byte(0);
            None
        }
        (OracleVerdict::Rejected, Some(_)) | (_, None) => {
            // Both sides parse the same frame with the same parser; this
            // arm is unreachable unless parsing itself is nondeterministic.
            mk(
                DivergenceKind::Verdict,
                format!("parse disagreement on frame {}", hex_encode(&item.frame)),
            )
        }
        (OracleVerdict::Dropped { nf }, Some(out)) => {
            match out.packet {
                None => {
                    st.dropped += 1;
                    st.hash_byte(1);
                    None
                }
                Some(pkt) => {
                    // Fast-path forward of a packet the baseline dropped:
                    // excusable only as the documented one-packet Event
                    // Table lag, proven by re-probing the rule.
                    let lagged = out.path == PathKind::Subsequent
                        && sut.sbox().is_some_and(|sbox| probes_as_drop(sbox, &item.frame));
                    if lagged {
                        st.excused += 1;
                        st.delivered += 1;
                        st.hash_byte(2);
                        st.hash_bytes(pkt.as_bytes());
                        None
                    } else {
                        mk(
                            DivergenceKind::Verdict,
                            format!(
                                "oracle dropped at NF {nf}, SUT forwarded ({:?} path): {}",
                                out.path,
                                hex_encode(pkt.as_bytes())
                            ),
                        )
                    }
                }
            }
        }
        (OracleVerdict::Delivered(expected), Some(out)) => match out.packet {
            None => mk(
                DivergenceKind::Verdict,
                format!(
                    "oracle forwarded, SUT dropped ({:?} path); input {}",
                    out.path,
                    hex_encode(&item.frame)
                ),
            ),
            Some(pkt) => {
                let mut got = pkt.as_bytes().to_vec();
                if case.bug == Some(BugKind::SkipChecksumFix) && out.path == PathKind::Subsequent {
                    zero_ip_checksum(&mut got);
                }
                if got == *expected {
                    st.delivered += 1;
                    st.hash_byte(2);
                    st.hash_bytes(&got);
                    None
                } else {
                    mk(
                        DivergenceKind::Bytes,
                        format!(
                            "output frames differ ({:?} path)\n  oracle: {}\n  sut:    {}",
                            out.path,
                            hex_encode(expected),
                            hex_encode(&got)
                        ),
                    )
                }
            }
        },
    }
}

/// Re-checks a flow's rule through `prepare` (Event Table conditions
/// first, as the next packet would) and asks whether the — possibly
/// freshly patched — consolidated action now drops.
fn probes_as_drop(sbox: &SpeedyBox, frame: &[u8]) -> bool {
    let Ok(mut probe) = Packet::from_frame(frame) else {
        return false;
    };
    let Ok(tuple) = probe.five_tuple() else {
        return false;
    };
    let fid = tuple.fid();
    probe.set_fid(fid);
    let mut ops = OpCounter::default();
    let Some(rule) = sbox.global.prepare(fid, &mut ops) else {
        return false;
    };
    matches!(rule.consolidated.apply(&mut probe, &mut ops), Ok(false))
}

/// Emulates the seeded "forgot the trailing checksum fix-up" bug by
/// zeroing the IPv4 header checksum of a fast-path output frame.
fn zero_ip_checksum(bytes: &mut [u8]) {
    let l3 = if bytes.len() > 14 && bytes[12] == 0x81 && bytes[13] == 0x00 { 18 } else { 14 };
    if bytes.len() >= l3 + 12 {
        bytes[l3 + 10] = 0;
        bytes[l3 + 11] = 0;
    }
}

/// End-of-run comparison of every observable NF-state hook present on
/// the chain. With excused Event Table lag, monitor totals get a
/// per-excused-packet allowance; everything else stays exact (excused
/// packets belong to already-established flows, so they cannot mint NAT
/// mappings or Maglev connections).
fn compare_hooks(
    oracle_hooks: &ChainHooks,
    sut_hooks: &ChainHooks,
    st: &RunState,
    n_items: usize,
) -> Option<Divergence> {
    let last = n_items.saturating_sub(1);
    let mk = |detail: String| {
        Some(Divergence { index: last, orig: last, kind: DivergenceKind::Counters, detail })
    };
    let excused = st.excused as u64;
    if let (Some(om), Some(sm)) = (&oracle_hooks.monitor, &sut_hooks.monitor) {
        if excused == 0 {
            if om.snapshot() != sm.snapshot() {
                return mk(format!(
                    "monitor counters differ: oracle {:?} vs sut {:?}",
                    sorted(om.snapshot()),
                    sorted(sm.snapshot())
                ));
            }
        } else {
            let ot: u64 = om.snapshot().values().map(|c| c.packets).sum();
            let stt: u64 = sm.snapshot().values().map(|c| c.packets).sum();
            if stt.abs_diff(ot) > excused {
                return mk(format!(
                    "monitor packet totals differ beyond excused lag: oracle {ot}, sut {stt}, excused {excused}"
                ));
            }
        }
    }
    if let (Some(on), Some(sn)) = (&oracle_hooks.nat, &sut_hooks.nat) {
        if on.mapping_count() != sn.mapping_count() {
            return mk(format!(
                "NAT mapping counts differ: oracle {}, sut {}",
                on.mapping_count(),
                sn.mapping_count()
            ));
        }
    }
    if let (Some(om), Some(sm)) = (&oracle_hooks.maglev, &sut_hooks.maglev) {
        if om.connection_count() != sm.connection_count() {
            return mk(format!(
                "Maglev connection counts differ: oracle {}, sut {}",
                om.connection_count(),
                sm.connection_count()
            ));
        }
    }
    if let (Some(os), Some(ss)) = (&oracle_hooks.snort, &sut_hooks.snort) {
        let (ol, sl) = (os.log().len() as u64, ss.log().len() as u64);
        if sl.abs_diff(ol) > excused {
            return mk(format!(
                "Snort alert counts differ: oracle {ol}, sut {sl}, excused {excused}"
            ));
        }
    }
    None
}

/// Deterministic rendering of a counter snapshot for error messages.
fn sorted(
    map: std::collections::HashMap<speedybox_packet::Fid, speedybox_nf::monitor::FlowCounters>,
) -> Vec<(u32, u64, u64)> {
    let mut v: Vec<(u32, u64, u64)> =
        map.into_iter().map(|(fid, c)| (fid.value(), c.packets, c.bytes)).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, ScenarioConfig};

    fn case(chain: &str, env: EnvKind, batch: usize, faults: bool) -> SimCase {
        let s = generate(&ScenarioConfig {
            seed: 11,
            chain: chain.into(),
            with_faults: faults,
            nf_faults: false,
        });
        SimCase {
            chain: chain.into(),
            env,
            compiled: true,
            batch,
            workers: 1,
            seed: 11,
            max_flows: 0,
            bug: None,
            items: s.items,
            faults: s.faults,
        }
    }

    #[test]
    fn clean_run_has_no_divergence() {
        let out = run_case(&case("snort-monitor", EnvKind::Bess, 1, false)).unwrap();
        assert!(out.divergence.is_none(), "{:?}", out.divergence);
        assert!(out.delivered > 0);
        assert!(out.rejected > 0, "malformed frames should be rejected");
    }

    #[test]
    fn same_case_same_hash() {
        let a = run_case(&case("chain2", EnvKind::Onvm, 8, false)).unwrap();
        let b = run_case(&case("chain2", EnvKind::Onvm, 8, false)).unwrap();
        assert_eq!(a.output_hash, b.output_hash);
        assert!(a.divergence.is_none(), "{:?}", a.divergence);
    }

    #[test]
    fn seeded_bug_is_caught() {
        let mut c = case("ipfilter:3", EnvKind::Bess, 1, false);
        c.bug = Some(BugKind::SkipChecksumFix);
        let out = run_case(&c).unwrap();
        let d = out.divergence.expect("seeded checksum bug must diverge");
        assert_eq!(d.kind, DivergenceKind::Bytes);
    }

    #[test]
    fn faulted_run_stays_equivalent() {
        let out = run_case(&case("maglev-failover", EnvKind::Bess, 1, true)).unwrap();
        assert!(out.divergence.is_none(), "{:?}", out.divergence);
    }

    #[test]
    fn retire_fault_is_equivalence_preserving() {
        let mut c = case("chain2", EnvKind::Bess, 4, false);
        c.faults = FaultPlan::parse("churn@0..40;retire@20;retire@41").unwrap();
        let out = run_case(&c).unwrap();
        assert!(out.divergence.is_none(), "{:?}", out.divergence);
    }

    #[test]
    fn evict_fault_is_equivalence_preserving() {
        // Heavy eviction pressure: force out up to 8 LRU flows at several
        // points; victims must transparently re-record on their next
        // packet with identical bytes and end-of-run NF state.
        for batch in [1usize, 4] {
            let mut c = case("chain2", EnvKind::Bess, batch, false);
            c.faults = FaultPlan::parse("evict@5=8;evict@20=2;evict@40=8").unwrap();
            let out = run_case(&c).unwrap();
            assert!(out.divergence.is_none(), "batch={batch}: {:?}", out.divergence);
        }
    }

    #[test]
    fn evict_ordering_bug_is_caught() {
        // The seeded half-teardown eviction leaves stale Local-MAT rules;
        // re-recording doubles them up, which the referee must notice.
        let mut c = case("chain2", EnvKind::Bess, 1, false);
        c.bug = Some(BugKind::EvictOrdering);
        c.faults = FaultPlan::parse("evict@5=8;evict@20=8").unwrap();
        let out = run_case(&c).unwrap();
        assert!(out.divergence.is_some(), "half-done eviction teardown must diverge");
    }

    #[test]
    fn nf_crash_recovery_is_equivalence_preserving() {
        for env in [EnvKind::Bess, EnvKind::Onvm] {
            let mut c = case("chain2", env, 1, false);
            c.faults = FaultPlan::parse("snap@5;nfkill@15=1;nfrecover@30=1;nfkill@45=0").unwrap();
            let out = run_case(&c).unwrap();
            assert!(out.divergence.is_none(), "{}: {:?}", env.as_str(), out.divergence);
        }
    }

    #[test]
    fn skip_snapshot_replay_bug_is_caught() {
        // The seeded recovery bug restores the checkpoint but "forgets"
        // the in-flight log: every packet since the last checkpoint
        // vanishes from NF state — the counter sweep must notice.
        let mut c = case("snort-monitor", EnvKind::Bess, 1, false);
        c.bug = Some(BugKind::SkipSnapshotReplay);
        c.faults = FaultPlan::parse("nfkill@25=0").unwrap();
        let out = run_case(&c).unwrap();
        let d = out.divergence.expect("skipped replay must diverge");
        assert_eq!(d.kind, DivergenceKind::Counters);
    }

    #[test]
    fn nf_faults_scenario_stays_equivalent() {
        // Generator-produced NF fault plans (kills layered over backend
        // churn and the usual perturbations) on the full chain1 stack.
        let s = generate(&ScenarioConfig {
            seed: 4,
            chain: "chain1".into(),
            with_faults: true,
            nf_faults: true,
        });
        assert!(s.faults.faults.iter().any(|f| matches!(f.fault, Fault::KillNf(_))));
        let c = SimCase {
            chain: "chain1".into(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed: 4,
            max_flows: 0,
            bug: None,
            items: s.items,
            faults: s.faults,
        };
        let out = run_case(&c).unwrap();
        assert!(out.divergence.is_none(), "{:?}", out.divergence);
    }

    #[test]
    fn worker_counts_share_one_output_hash() {
        let base = run_case(&case("chain1", EnvKind::Bess, 8, false)).unwrap();
        assert!(base.divergence.is_none(), "{:?}", base.divergence);
        for workers in [2, 4, 8] {
            let mut c = case("chain1", EnvKind::Bess, 8, false);
            c.workers = workers;
            let out = run_case(&c).unwrap();
            assert!(out.divergence.is_none(), "workers={workers}: {:?}", out.divergence);
            assert_eq!(out.output_hash, base.output_hash, "workers={workers}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let bytes = vec![0x00, 0xff, 0x10, 0xab];
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("zz").is_err());
        assert!(hex_decode("abc").is_err());
    }
}
