//! Divergence shrinking: reduce a failing case to a minimal reproducer.
//!
//! Strategy, in order, under a global candidate-run budget:
//!
//! 1. **truncate** — a divergence at packet `i` cannot depend on later
//!    packets, so cut the trace there (monotone, free);
//! 2. **fault minimization** — drop each fault clause that isn't needed
//!    to reproduce (churn goes first: a fault-free reproducer is worth
//!    more than a small one);
//! 3. **head binary search** — find the longest prefix that can be
//!    removed wholesale;
//! 4. **ddmin-style chunk removal** — remove interior chunks at
//!    decreasing granularity, re-truncating after every success.
//!
//! Items keep their original-trace indices, so fault plans stay pinned to
//! the same boundaries while packets disappear around them.

use crate::fault::{Fault, FaultPlan};
use crate::runner::{run_case, SimCase};

/// Shrinks `case` (which must diverge) to a smaller case that still
/// diverges, running at most `budget` candidate executions.
///
/// Returns the shrunk case and the number of candidate runs spent. If
/// `case` does not actually diverge it is returned unchanged.
#[must_use]
pub fn shrink(case: &SimCase, budget: usize) -> (SimCase, usize) {
    let mut spent = 0usize;
    let mut best = case.clone();

    let Some(d) = diverges(&best, &mut spent) else {
        return (best, spent);
    };
    truncate_at(&mut best, d);

    // Drop faults greedily. Churn goes first and wholesale: its thread
    // interleaving is the only nondeterminism in a run, so a churn-free
    // reproducer is worth more than a small one.
    if best.faults.faults.iter().any(|f| matches!(f.fault, Fault::ChurnStart | Fault::ChurnStop))
        && spent < budget
    {
        let mut candidate = best.clone();
        candidate.faults = FaultPlan::new(
            candidate
                .faults
                .faults
                .into_iter()
                .filter(|f| !matches!(f.fault, Fault::ChurnStart | Fault::ChurnStop))
                .collect(),
        );
        if let Some(d) = diverges(&candidate, &mut spent) {
            truncate_at(&mut candidate, d);
            best = candidate;
        }
    }
    // Then each remaining clause individually, scanning from the back so
    // removals don't shift unvisited positions.
    let mut pos = best.faults.faults.len();
    while pos > 0 && spent < budget {
        pos -= 1;
        if pos >= best.faults.faults.len() {
            continue;
        }
        let mut candidate = best.clone();
        candidate.faults.faults.remove(pos);
        if let Some(d) = diverges(&candidate, &mut spent) {
            truncate_at(&mut candidate, d);
            best = candidate;
        }
    }

    // Head trim: binary-search the largest removable prefix.
    let mut lo = 0usize;
    let mut hi = best.items.len().saturating_sub(1);
    while lo < hi && spent < budget {
        let mid = usize::midpoint(lo, hi + 1);
        let mut candidate = best.clone();
        candidate.items.drain(..mid);
        if let Some(d) = diverges(&candidate, &mut spent) {
            truncate_at(&mut candidate, d);
            best = candidate;
            hi = best.items.len().saturating_sub(1);
            lo = 0;
        } else {
            hi = mid - 1;
        }
    }

    // ddmin-style interior chunk removal.
    let mut chunk = best.items.len() / 2;
    while chunk >= 1 && spent < budget {
        let mut start = 0;
        while start < best.items.len() && spent < budget {
            // Never remove the final (diverging) packet on its own.
            if start + chunk >= best.items.len() && chunk == 1 {
                break;
            }
            let end = (start + chunk).min(best.items.len());
            let mut candidate = best.clone();
            candidate.items.drain(start..end);
            if candidate.items.is_empty() {
                start += chunk;
                continue;
            }
            if let Some(d) = diverges(&candidate, &mut spent) {
                truncate_at(&mut candidate, d);
                best = candidate;
                // Same start again: the next chunk slid into place.
            } else {
                start += chunk;
            }
        }
        chunk /= 2;
    }

    (best, spent)
}

/// Runs a candidate, returning the divergence index if it still fails.
fn diverges(case: &SimCase, spent: &mut usize) -> Option<usize> {
    *spent += 1;
    run_case(case).ok().and_then(|o| o.divergence.map(|d| d.index))
}

/// Keeps items up to and including the diverging index.
fn truncate_at(case: &mut SimCase, index: usize) {
    case.items.truncate(index + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{BugKind, EnvKind};
    use crate::scenario::{generate, ScenarioConfig};

    #[test]
    fn shrinks_seeded_bug_to_a_handful_of_packets() {
        let s = generate(&ScenarioConfig {
            seed: 5,
            chain: "ipfilter:3".into(),
            with_faults: false,
            nf_faults: false,
        });
        let case = SimCase {
            chain: "ipfilter:3".into(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed: 5,
            max_flows: 0,
            bug: Some(BugKind::SkipChecksumFix),
            items: s.items,
            faults: s.faults,
        };
        let (small, spent) = shrink(&case, 200);
        assert!(spent <= 200);
        assert!(small.items.len() <= 20, "reproducer still has {} packets", small.items.len());
        let out = run_case(&small).unwrap();
        assert!(out.divergence.is_some(), "shrunk case must still diverge");
    }
}
