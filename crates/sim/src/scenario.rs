//! Seeded scenario generation: adversarial packet traces plus scripted
//! fault plans.
//!
//! Every scenario is fully determined by `(seed, chain)`. On top of a
//! small base workload (mice/elephant mix, suspicious payloads, SYN/FIN
//! handshakes) the generator splices in the traffic shapes most likely to
//! expose consolidation bugs:
//!
//! * **malformed frames** — truncated mid-header, bad version/IHL
//!   nibbles, short AH, pure garbage — which must be rejected (or
//!   mis-parsed) *identically* by oracle and SUT;
//! * **FID collisions** — two 5-tuples sharing one 20-bit FID, forcing
//!   the collision slow path while the owner flow keeps its rule;
//! * **mid-stream RST** followed by a re-opened flow (teardown +
//!   re-install);
//! * **SYN storms** tripping the DoS threshold (Event Table Drop
//!   rewrites);
//! * **long-lived flows** that stay open across every fault window.
//!
//! Fault plans are sized as percentages of the final trace so any seed
//! produces kills inside live-flow windows.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use speedybox_packet::{FiveTuple, PacketBuilder, Protocol, TcpFlags};
use speedybox_traffic::{Workload, WorkloadConfig};

use crate::fault::{Fault, FaultAt, FaultPlan};

/// One trace entry: the raw frame plus its index in the original
/// (unshrunk) trace, which fault plans key on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceItem {
    /// Index in the original generated trace.
    pub orig: usize,
    /// Raw Ethernet frame bytes.
    pub frame: Vec<u8>,
}

/// Inputs to [`generate`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed; same seed + chain → byte-identical scenario.
    pub seed: u64,
    /// Registry chain name (drives chain-specific traffic shapes).
    pub chain: String,
    /// Include a scripted fault plan.
    pub with_faults: bool,
    /// Add NF crash/restart verbs (`nfkill`/`nfrecover`/`snap`) to the
    /// plan. Composable with `with_faults`; the runner auto-enables
    /// checkpointing when any NF verb is present.
    pub nf_faults: bool,
}

/// A generated scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The packet trace.
    pub items: Vec<TraceItem>,
    /// The fault plan (empty when faults are disabled).
    pub faults: FaultPlan,
}

/// FNV-1a over a string, to fold the chain name into the seed.
fn fnv_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Generates the deterministic scenario for a `(seed, chain)` pair.
#[must_use]
pub fn generate(cfg: &ScenarioConfig) -> Scenario {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ fnv_str(&cfg.chain));

    // Base workload: a handful of short handshaked flows, some carrying
    // Snort-suspicious payloads. Kept small so debug-mode sweeps of
    // thousands of cases stay fast.
    let base = Workload::generate(&WorkloadConfig {
        flows: 6,
        median_packets: 3.0,
        sigma: 0.8,
        payload_len: 48,
        suspicious_fraction: 0.3,
        with_handshake: true,
        seed: rng.gen(),
        ..WorkloadConfig::default()
    });
    let mut frames: Vec<Vec<u8>> = base.packets().iter().map(|p| p.as_bytes().to_vec()).collect();
    let template = frames.first().cloned().unwrap_or_default();

    // Two long-lived flows (SYN + data, FIN withheld until the very end)
    // so every fault window lands on live consolidated rules.
    let mut fins = Vec::new();
    for i in 0..2u8 {
        let src = SocketAddrV4::new(Ipv4Addr::new(10, 7, 0, i + 1), 2101 + u16::from(i));
        let (open, fin) = long_flow(src, 12, i);
        insert_spread(&mut rng, &mut frames, open);
        fins.push(fin);
    }

    // Mid-stream RST, then the same tuple re-opens: teardown + re-install.
    insert_spread(&mut rng, &mut frames, rst_reopen_flow());

    // FID collision pair: the owner keeps its rule, the collider must take
    // the slow path on both sides.
    insert_spread(&mut rng, &mut frames, collision_frames());

    // Malformed / degenerate frames.
    let malformed = malformed_frames(&mut rng, &template);
    insert_spread(&mut rng, &mut frames, malformed);

    // SYN storm for DoS-guarded chains: 12 SYNs against threshold 5.
    if cfg.chain.starts_with("dos") {
        insert_block(&mut rng, &mut frames, syn_storm(12));
    }

    // Close the long-lived flows last.
    frames.extend(fins);

    let mut faults = if cfg.with_faults {
        fault_plan(&mut rng, &cfg.chain, frames.len())
    } else {
        FaultPlan::empty()
    };
    if cfg.nf_faults {
        let mut all = faults.faults;
        all.extend(nf_fault_plan(&mut rng, &cfg.chain, frames.len()));
        faults = FaultPlan::new(all);
    }

    let items =
        frames.into_iter().enumerate().map(|(orig, frame)| TraceItem { orig, frame }).collect();
    Scenario { items, faults }
}

/// Inserts a group into the trace at sorted random positions, preserving
/// the group's internal order.
fn insert_spread(rng: &mut StdRng, frames: &mut Vec<Vec<u8>>, group: Vec<Vec<u8>>) {
    let mut positions: Vec<usize> = group.iter().map(|_| rng.gen_range(0..=frames.len())).collect();
    positions.sort_unstable();
    for (i, (pos, frame)) in positions.into_iter().zip(group).enumerate() {
        frames.insert(pos + i, frame);
    }
}

/// Inserts a group as one contiguous burst at a random position.
fn insert_block(rng: &mut StdRng, frames: &mut Vec<Vec<u8>>, group: Vec<Vec<u8>>) {
    let pos = rng.gen_range(0..=frames.len());
    for (i, frame) in group.into_iter().enumerate() {
        frames.insert(pos + i, frame);
    }
}

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 99, 99, 99);

/// A SYN-opened flow with `n` data packets; the FIN is returned
/// separately so the caller can park it at the end of the trace.
fn long_flow(src: SocketAddrV4, n: u32, tag: u8) -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut b = PacketBuilder::tcp();
    b.src(src).dst(SocketAddrV4::new(SERVER, 80));
    let mut frames = vec![b.flags(TcpFlags::SYN).seq(0).payload(b"").build().as_bytes().to_vec()];
    for k in 0..n {
        let payload = format!("long-{tag}-{k}");
        frames.push(
            b.flags(TcpFlags::ACK)
                .seq(k + 1)
                .payload(payload.as_bytes())
                .build()
                .as_bytes()
                .to_vec(),
        );
    }
    let fin =
        b.flags(TcpFlags::FIN | TcpFlags::ACK).seq(n + 1).payload(b"").build().as_bytes().to_vec();
    (frames, fin)
}

/// SYN, data, RST, then the same tuple re-opens with a fresh handshake.
fn rst_reopen_flow() -> Vec<Vec<u8>> {
    let mut b = PacketBuilder::tcp();
    b.src(SocketAddrV4::new(Ipv4Addr::new(10, 7, 1, 1), 2200)).dst(SocketAddrV4::new(SERVER, 80));
    let mut frames = Vec::new();
    frames.push(b.flags(TcpFlags::SYN).seq(0).payload(b"").build().as_bytes().to_vec());
    for k in 0..2u32 {
        frames.push(
            b.flags(TcpFlags::ACK).seq(k + 1).payload(b"pre-rst").build().as_bytes().to_vec(),
        );
    }
    frames.push(b.flags(TcpFlags::RST).seq(3).payload(b"").build().as_bytes().to_vec());
    frames.push(b.flags(TcpFlags::SYN).seq(0).payload(b"").build().as_bytes().to_vec());
    for k in 0..2u32 {
        frames.push(
            b.flags(TcpFlags::ACK).seq(k + 1).payload(b"post-rst").build().as_bytes().to_vec(),
        );
    }
    frames
}

/// Two distinct 5-tuples sharing one 20-bit FID (bounded deterministic
/// search, cached process-wide — the search scans ~2^18 tuples once).
fn colliding_pair() -> &'static (FiveTuple, FiveTuple) {
    static PAIR: OnceLock<(FiveTuple, FiveTuple)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let mut seen: HashMap<u32, FiveTuple> = HashMap::new();
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                for port in [1000u16, 2000, 3000, 4000] {
                    let t = FiveTuple::new(
                        Ipv4Addr::new(10, 5, a, b),
                        port,
                        Ipv4Addr::new(10, 0, 0, 2),
                        80,
                        Protocol::Tcp,
                    );
                    let fid = t.fid().value();
                    if let Some(prev) = seen.get(&fid) {
                        if *prev != t {
                            return (*prev, t);
                        }
                    }
                    seen.insert(fid, t);
                }
            }
        }
        unreachable!("no FID collision in a 2^18 tuple space against a 20-bit hash")
    })
}

/// Owner flow (3 packets) plus collider flow (2 packets) on the shared
/// FID. Deliberately FIN-free: the platforms skip teardown for
/// collision-class packets while the baseline tears down on any FIN with
/// the FID, a *known, intended* asymmetry the harness must not trip on.
fn collision_frames() -> Vec<Vec<u8>> {
    let (owner, collider) = colliding_pair();
    let mk = |t: &FiveTuple, seq: u32, payload: &str| {
        let mut b = PacketBuilder::tcp();
        b.src(SocketAddrV4::new(t.src_ip, t.src_port))
            .dst(SocketAddrV4::new(t.dst_ip, t.dst_port))
            .flags(TcpFlags::ACK)
            .seq(seq)
            .payload(payload.as_bytes());
        b.build().as_bytes().to_vec()
    };
    vec![
        mk(owner, 0, "owner-0"),
        mk(collider, 0, "collider-0"),
        mk(owner, 1, "owner-1"),
        mk(collider, 1, "collider-1"),
        mk(owner, 2, "owner-2"),
    ]
}

/// Malformed and degenerate frames derived from a valid template. All of
/// them must be handled identically by oracle and SUT — most are rejected
/// at parse time, a few remain valid edge cases (zero-length payload,
/// payload-truncated datagrams).
fn malformed_frames(rng: &mut StdRng, template: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    if template.len() > 34 {
        // Truncated mid-IP-header.
        out.push(template[..rng.gen_range(15..34)].to_vec());
        // Truncated inside the payload (L2 capture cut short).
        out.push(template[..template.len() - 10].to_vec());
        // Bad version nibble.
        let mut f = template.to_vec();
        f[14] = 0x65;
        out.push(f);
        // IHL below the minimum header length.
        let mut f = template.to_vec();
        f[14] = 0x42;
        out.push(f);
        // AH packet too short to hold the authentication header.
        let mut f = template[..14 + 20 + 6].to_vec();
        f[14 + 9] = 51;
        out.push(f);
    }
    // Pure garbage (never parses: needs ethertype, version, proto to line
    // up).
    let garbage: Vec<u8> = (0..rng.gen_range(16..40))
        .map(|_| u8::try_from(rng.gen_range(0..=255u32)).unwrap())
        .collect();
    out.push(garbage);
    // Valid zero-length payload packet.
    let mut b = PacketBuilder::tcp();
    b.src(SocketAddrV4::new(Ipv4Addr::new(10, 8, 0, 1), 2300))
        .dst(SocketAddrV4::new(SERVER, 80))
        .flags(TcpFlags::ACK)
        .payload(b"");
    out.push(b.build().as_bytes().to_vec());
    out
}

/// A burst of SYNs from one tuple, tripping DosGuard's threshold.
fn syn_storm(n: u32) -> Vec<Vec<u8>> {
    let mut b = PacketBuilder::tcp();
    b.src(SocketAddrV4::new(Ipv4Addr::new(10, 66, 0, 1), 4321))
        .dst(SocketAddrV4::new(SERVER, 80))
        .payload(b"");
    (0..n).map(|k| b.flags(TcpFlags::SYN).seq(k).build().as_bytes().to_vec()).collect()
}

/// Whether the chain routes traffic through a Maglev instance.
fn has_maglev(chain: &str) -> bool {
    chain == "chain1" || chain == "maglev-failover"
}

/// NF count of a registry chain, mirroring the `chains` registry — kill
/// targets must stay in range.
fn chain_len(chain: &str) -> usize {
    if let Some(n) = chain.strip_prefix("ipfilter:").or_else(|| chain.strip_prefix("synthetic:")) {
        return n.parse().unwrap_or(1).max(1);
    }
    match chain {
        "chain1" => 4,
        "chain2" | "vpn-tunnel" => 3,
        "snort-monitor" | "dos-mitigation" => 2,
        _ => 1, // maglev-failover, snort
    }
}

/// NF crash/restart verbs: an on-demand checkpoint, a kill with the
/// quarantine window held open across live traffic, a recovery, and
/// (half the time) a second crash late in the trace.
fn nf_fault_plan(rng: &mut StdRng, chain: &str, n: usize) -> Vec<FaultAt> {
    let pct = |p: usize| (n * p) / 100;
    let nfs = chain_len(chain);
    let victim = rng.gen_range(0..nfs);
    let kill_at = rng.gen_range(25..45);
    let recover_at = rng.gen_range(50..70);
    let mut faults = vec![
        FaultAt { at: pct(20), fault: Fault::Snapshot },
        FaultAt { at: pct(kill_at), fault: Fault::KillNf(victim) },
        FaultAt { at: pct(recover_at), fault: Fault::RecoverNf(victim) },
    ];
    if rng.gen_bool(0.5) {
        let second = rng.gen_range(0..nfs);
        faults.push(FaultAt { at: pct(80), fault: Fault::KillNf(second) });
        faults.push(FaultAt { at: pct(95), fault: Fault::RecoverNf(second) });
    }
    faults
}

/// Builds the scripted fault plan, positions scaled to the trace length.
fn fault_plan(rng: &mut StdRng, chain: &str, n: usize) -> FaultPlan {
    let pct = |p: usize| (n * p) / 100;
    let mut faults = vec![
        FaultAt { at: pct(15), fault: Fault::ChurnStart },
        FaultAt { at: pct(85), fault: Fault::ChurnStop },
        FaultAt { at: pct(35), fault: Fault::FlipMode },
        FaultAt { at: pct(70), fault: Fault::FlipMode },
        FaultAt { at: pct(55), fault: Fault::ExpireIdle(3) },
        FaultAt { at: pct(25), fault: Fault::RemoveNextFlowRule },
        FaultAt { at: pct(60), fault: Fault::RemoveNextFlowRule },
        // Capacity-pressure LRU eviction: force out a few least-recently
        // seen flows mid-run; they must transparently re-record.
        FaultAt { at: pct(45), fault: Fault::EvictOldest(rng.gen_range(1..=4)) },
        FaultAt { at: pct(75), fault: Fault::EvictOldest(rng.gen_range(1..=4)) },
    ];
    if has_maglev(chain) {
        if chain == "maglev-failover" && rng.gen_bool(0.33) {
            // Total outage: every backend down, then staggered recovery.
            // Exercises the Drop-patch → Modify-patch rewrite cycle.
            for i in 0..4 {
                faults.push(FaultAt {
                    at: pct(30),
                    fault: Fault::KillBackend(format!("backend-{i}")),
                });
            }
            let first = rng.gen_range(0..4u32);
            faults.push(FaultAt {
                at: pct(65),
                fault: Fault::RecoverBackend(format!("backend-{first}")),
            });
            for i in 0..4 {
                faults.push(FaultAt {
                    at: pct(85),
                    fault: Fault::RecoverBackend(format!("backend-{i}")),
                });
            }
        } else {
            let victim = rng.gen_range(0..4u32);
            faults.push(FaultAt {
                at: pct(30),
                fault: Fault::KillBackend(format!("backend-{victim}")),
            });
            faults.push(FaultAt {
                at: pct(65),
                fault: Fault::RecoverBackend(format!("backend-{victim}")),
            });
        }
    }
    FaultPlan::new(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let cfg =
            ScenarioConfig { seed: 7, chain: "chain1".into(), with_faults: true, nf_faults: false };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.items, b.items);
        assert_eq!(a.faults, b.faults);
        assert!(!a.faults.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ScenarioConfig {
            seed: 1,
            chain: "snort".into(),
            with_faults: false,
            nf_faults: false,
        });
        let b = generate(&ScenarioConfig {
            seed: 2,
            chain: "snort".into(),
            with_faults: false,
            nf_faults: false,
        });
        assert_ne!(a.items, b.items);
        assert!(a.faults.is_empty());
    }

    #[test]
    fn dos_chains_get_a_syn_storm() {
        let s = generate(&ScenarioConfig {
            seed: 3,
            chain: "dos-mitigation".into(),
            with_faults: false,
            nf_faults: false,
        });
        let syns = s
            .items
            .iter()
            .filter_map(|i| speedybox_packet::Packet::from_frame(&i.frame).ok())
            .filter(|p| p.tcp_flags().syn())
            .count();
        assert!(syns >= 12, "expected a SYN storm, saw {syns}");
    }

    #[test]
    fn collision_pair_shares_a_fid() {
        let (a, b) = colliding_pair();
        assert_ne!(a, b);
        assert_eq!(a.fid(), b.fid());
    }
}
