//! Replayable divergence artifacts.
//!
//! When a sweep finds a divergence, the shrunk reproducer is dumped as a
//! small self-contained JSON document: chain, environment, execution
//! mode, fault plan (DSL text), the exact frames, and what diverged.
//! `speedybox sim --replay <file>` re-runs it byte-for-byte — no seed or
//! generator version is needed to reproduce, because the frames
//! themselves are embedded.

use crate::fault::FaultPlan;
use crate::json::Json;
use crate::runner::{hex_decode, hex_encode, BugKind, Divergence, EnvKind, SimCase};
use crate::scenario::TraceItem;

/// Artifact format version; bump on breaking layout changes.
pub const ARTIFACT_VERSION: u64 = 1;

/// Serializes a case (plus the divergence that produced it) to JSON text.
#[must_use]
pub fn to_json(case: &SimCase, divergence: Option<&Divergence>) -> String {
    let mut fields = vec![
        ("version".to_string(), Json::Num(ARTIFACT_VERSION as f64)),
        ("chain".to_string(), Json::Str(case.chain.clone())),
        ("env".to_string(), Json::Str(case.env.as_str().to_string())),
        ("compiled".to_string(), Json::Bool(case.compiled)),
        ("batch".to_string(), Json::Num(case.batch as f64)),
        ("workers".to_string(), Json::Num(case.workers.max(1) as f64)),
        ("seed".to_string(), Json::Num(seed_f64(case.seed))),
        ("max_flows".to_string(), Json::Num(case.max_flows as f64)),
        ("bug".to_string(), case.bug.map_or(Json::Null, |b| Json::Str(b.as_str().to_string()))),
        ("faults".to_string(), Json::Str(case.faults.to_dsl())),
        (
            "trace".to_string(),
            Json::Arr(
                case.items
                    .iter()
                    .map(|item| {
                        Json::Obj(vec![
                            ("i".to_string(), Json::Num(item.orig as f64)),
                            ("frame".to_string(), Json::Str(hex_encode(&item.frame))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(d) = divergence {
        fields.push((
            "divergence".to_string(),
            Json::Obj(vec![
                ("index".to_string(), Json::Num(d.index as f64)),
                ("orig".to_string(), Json::Num(d.orig as f64)),
                ("kind".to_string(), Json::Str(d.kind.as_str().to_string())),
                ("detail".to_string(), Json::Str(d.detail.clone())),
            ]),
        ));
    }
    Json::Obj(fields).render()
}

/// Seeds above 2^53 are informational only; clamp rather than lose
/// round-trip precision silently.
#[allow(clippy::cast_precision_loss)]
fn seed_f64(seed: u64) -> f64 {
    seed.min((1u64 << 53) - 1) as f64
}

/// Deserializes an artifact back into a runnable case.
///
/// # Errors
/// Malformed JSON, missing fields, or an unsupported version.
pub fn from_json(text: &str) -> Result<SimCase, String> {
    let root = Json::parse(text)?;
    let version = root.get("version").and_then(Json::as_u64).ok_or("missing artifact version")?;
    if version != ARTIFACT_VERSION {
        return Err(format!("unsupported artifact version {version}"));
    }
    let chain = root.get("chain").and_then(Json::as_str).ok_or("missing chain")?.to_string();
    let env = EnvKind::parse(root.get("env").and_then(Json::as_str).ok_or("missing env")?)?;
    let compiled = root.get("compiled").and_then(Json::as_bool).ok_or("missing compiled")?;
    let as_size = |v: u64| usize::try_from(v).map_err(|_| "field exceeds usize".to_string());
    let batch = as_size(root.get("batch").and_then(Json::as_u64).ok_or("missing batch")?.max(1))?;
    // Absent in pre-worker artifacts: replay those single-worker.
    let workers = as_size(root.get("workers").and_then(Json::as_u64).unwrap_or(1).max(1))?;
    let seed = root.get("seed").and_then(Json::as_u64).unwrap_or(0);
    // Absent in pre-bounded-table artifacts: replay those unbounded.
    let max_flows = as_size(root.get("max_flows").and_then(Json::as_u64).unwrap_or(0))?;
    let bug = match root.get("bug") {
        None | Some(Json::Null) => None,
        Some(v) => Some(BugKind::parse(v.as_str().ok_or("bug must be a string")?)?),
    };
    let faults = FaultPlan::parse(root.get("faults").and_then(Json::as_str).unwrap_or_default())?;
    let trace = root.get("trace").and_then(Json::as_arr).ok_or("missing trace")?;
    let mut items = Vec::with_capacity(trace.len());
    for entry in trace {
        let orig =
            as_size(entry.get("i").and_then(Json::as_u64).ok_or("trace entry missing index")?)?;
        let frame = hex_decode(
            entry.get("frame").and_then(Json::as_str).ok_or("trace entry missing frame")?,
        )?;
        items.push(TraceItem { orig, frame });
    }
    Ok(SimCase { chain, env, compiled, batch, workers, seed, max_flows, bug, items, faults })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::DivergenceKind;
    use crate::scenario::{generate, ScenarioConfig};

    #[test]
    fn artifact_round_trips_a_case() {
        let s = generate(&ScenarioConfig {
            seed: 9,
            chain: "chain1".into(),
            with_faults: true,
            nf_faults: false,
        });
        let case = SimCase {
            chain: "chain1".into(),
            env: EnvKind::Onvm,
            compiled: false,
            batch: 8,
            workers: 4,
            seed: 9,
            max_flows: 48,
            bug: Some(BugKind::SkipChecksumFix),
            items: s.items,
            faults: s.faults,
        };
        let d = Divergence {
            index: 3,
            orig: 7,
            kind: DivergenceKind::Bytes,
            detail: "output frames differ".into(),
        };
        let text = to_json(&case, Some(&d));
        let back = from_json(&text).unwrap();
        assert_eq!(back.chain, case.chain);
        assert_eq!(back.env, case.env);
        assert_eq!(back.compiled, case.compiled);
        assert_eq!(back.batch, case.batch);
        assert_eq!(back.workers, case.workers);
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.max_flows, case.max_flows);
        assert_eq!(back.bug, case.bug);
        assert_eq!(back.faults, case.faults);
        assert_eq!(back.items, case.items);
    }

    #[test]
    fn nf_fault_verbs_round_trip() {
        // The recovery verbs travel as DSL text inside the artifact; a
        // replayed case must get back the identical plan and bug.
        let s = generate(&ScenarioConfig {
            seed: 3,
            chain: "snort-monitor".into(),
            with_faults: false,
            nf_faults: true,
        });
        assert!(s.faults.to_dsl().contains("nfkill"), "{}", s.faults.to_dsl());
        let case = SimCase {
            chain: "snort-monitor".into(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed: 3,
            max_flows: 0,
            bug: Some(BugKind::SkipSnapshotReplay),
            items: s.items,
            faults: s.faults,
        };
        let text = to_json(&case, None);
        let back = from_json(&text).unwrap();
        assert_eq!(back.faults, case.faults);
        assert_eq!(back.bug, case.bug);
        assert_eq!(back.faults.to_dsl(), case.faults.to_dsl());
    }

    #[test]
    fn pre_recovery_artifacts_still_parse() {
        // Artifacts written before the nfkill/nfrecover/snap verbs (and
        // the skip-snapshot-replay bug) existed carry only the old fault
        // vocabulary; they must keep replaying unchanged.
        let s = generate(&ScenarioConfig {
            seed: 5,
            chain: "chain2".into(),
            with_faults: false,
            nf_faults: false,
        });
        let case = SimCase {
            chain: "chain2".into(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed: 5,
            max_flows: 0,
            bug: None,
            items: s.items,
            faults: FaultPlan::parse("churn@0..8;retire@4;evict@6=2").unwrap(),
        };
        let text = to_json(&case, None);
        for verb in ["nfkill", "nfrecover", "snap@"] {
            assert!(!text.contains(verb), "old-style artifact must not carry {verb}");
        }
        let back = from_json(&text).unwrap();
        assert_eq!(back.faults, case.faults);
    }

    #[test]
    fn rejects_bad_artifacts() {
        assert!(from_json("{}").is_err());
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"version":99}"#).is_err());
    }

    #[test]
    fn pre_worker_artifacts_replay_single_worker() {
        let s = generate(&ScenarioConfig {
            seed: 2,
            chain: "chain1".into(),
            with_faults: false,
            nf_faults: false,
        });
        let case = SimCase {
            chain: "chain1".into(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed: 2,
            max_flows: 0,
            bug: None,
            items: s.items,
            faults: s.faults,
        };
        let mut text = to_json(&case, None);
        // Simulate an artifact written before the workers field existed.
        text = text.replace("\"workers\":1,", "");
        assert!(!text.contains("workers"));
        let back = from_json(&text).unwrap();
        assert_eq!(back.workers, 1);
    }
}
