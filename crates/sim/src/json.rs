//! A minimal hand-rolled JSON value type, writer, and recursive-descent
//! parser — just enough for the replayable divergence artifacts, so the
//! harness needs no external serialization dependency.
//!
//! Numbers are carried as `f64`; the artifacts only store indices, seeds
//! below 2^53, and small counters, all exactly representable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integer-valued in practice).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so rendering is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer-valued number.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text (deterministic: object
    /// fields keep insertion order).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    #[allow(clippy::cast_possible_truncation)] // |n| < 9e15 < i64::MAX
                    let int = *n as i64;
                    let _ = write!(out, "{int}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

#[allow(clippy::cast_possible_truncation)]
fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; input came from &str so it is
                // valid UTF-8 by construction.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(42.0)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("x\"y".into())])),
            ("c".into(), Json::Obj(vec![("n".into(), Json::Num(-3.0))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}x").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\u{1}b\nc".into());
        let text = v.render();
        assert_eq!(text, "\"a\\u0001b\\nc\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}
