//! Malformed-frame fuzzing for the packet substrate.
//!
//! The simulation harness feeds adversarial frames to whole chains; these
//! tests pin the substrate-level contract that makes that safe: parsing
//! never panics, and a frame is either accepted with self-consistent
//! headers or rejected with a typed error. In particular,
//! `Packet::from_frame` must reject frames whose IPv4 `total_len` declares
//! more bytes than the frame carries — a truncation that previously
//! slipped through whenever the L4 header happened to survive the cut.

use proptest::prelude::*;
use speedybox_packet::packet::PacketError;
use speedybox_packet::{Packet, PacketBuilder};

/// A plain TCP packet with a payload, as raw frame bytes.
fn valid_frame() -> Vec<u8> {
    PacketBuilder::tcp()
        .src("10.0.0.1:4000".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .payload(b"some application payload")
        .build()
        .as_bytes()
        .to_vec()
}

/// Exercises every accessor that the NFs and the sim oracle rely on; the
/// point is that none of them panic, whatever `from_frame` accepted.
fn poke(frame: &[u8]) {
    if let Ok(p) = Packet::from_frame(frame) {
        let _ = p.five_tuple();
        let _ = p.payload();
        let _ = p.tcp_flags();
        let _ = p.layout();
        let _ = p.verify_checksums();
        let _ = p.ipv4();
        let _ = p.vlan_id();
    }
}

#[test]
fn bad_ihl_is_rejected() {
    let mut frame = valid_frame();
    frame[14] = 0x42; // version 4, IHL 2 (< 5)
    assert!(matches!(Packet::from_frame(&frame), Err(PacketError::Malformed(_))));
}

#[test]
fn bad_version_is_rejected() {
    let mut frame = valid_frame();
    frame[14] = 0x65; // version 6
    assert!(matches!(Packet::from_frame(&frame), Err(PacketError::Malformed(_))));
}

#[test]
fn oversized_ihl_claiming_past_frame_is_rejected() {
    let mut frame = valid_frame();
    frame[14] = 0x4f; // IHL 15: 60-byte header the frame cannot hold
    assert!(Packet::from_frame(&frame).is_err());
}

#[test]
fn short_ah_is_rejected() {
    let mut frame = valid_frame();
    frame[23] = 51; // IPPROTO_AH, but no AH bytes follow the IP header
    frame.truncate(40);
    assert!(matches!(Packet::from_frame(&frame), Err(PacketError::Truncated { .. })));
}

#[test]
fn zero_length_payload_is_accepted() {
    let p = PacketBuilder::tcp()
        .src("10.0.0.1:4000".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .build();
    let re = Packet::from_frame(p.as_bytes()).unwrap();
    assert_eq!(re.payload().unwrap(), b"");
    assert_eq!(re.as_bytes(), p.as_bytes());
}

#[test]
fn truncated_payload_is_rejected() {
    // The L4 header survives the cut, so before the total_len check this
    // frame parsed "successfully" with a silently shortened payload.
    let mut frame = valid_frame();
    frame.truncate(frame.len() - 10);
    match Packet::from_frame(&frame) {
        Err(PacketError::Truncated { needed, have }) => {
            assert_eq!(needed, have + 10);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn every_prefix_truncation_is_rejected() {
    let frame = valid_frame();
    for cut in 0..frame.len() {
        assert!(Packet::from_frame(&frame[..cut]).is_err(), "prefix of {cut} bytes must not parse");
    }
    assert!(Packet::from_frame(&frame).is_ok());
}

#[test]
fn ethernet_padding_is_tolerated() {
    // Frames shorter than the Ethernet minimum arrive padded: the frame is
    // longer than `total_len` declares. That must stay accepted, and the
    // padding must not leak into the payload view.
    let p = PacketBuilder::tcp()
        .src("10.0.0.1:4000".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .payload(b"ab")
        .build();
    let mut frame = p.as_bytes().to_vec();
    frame.extend_from_slice(&[0u8; 18]);
    let re = Packet::from_frame(&frame).unwrap();
    assert!(re.verify_checksums().unwrap());
    assert_eq!(re.five_tuple().unwrap(), p.five_tuple().unwrap());
}

#[test]
fn total_len_below_header_len_is_rejected() {
    let mut frame = valid_frame();
    frame[16] = 0;
    frame[17] = 10; // total_len 10 < 20-byte header
    assert!(matches!(Packet::from_frame(&frame), Err(PacketError::Malformed(_))));
}

#[test]
fn declared_longer_than_frame_is_rejected() {
    let mut frame = valid_frame();
    frame[16] = 0xff;
    frame[17] = 0xff;
    assert!(matches!(Packet::from_frame(&frame), Err(PacketError::Truncated { .. })));
}

proptest! {
    /// No single-byte corruption of a valid frame can cause a panic, in
    /// parsing or in any downstream accessor.
    #[test]
    fn single_byte_corruption_never_panics(offset in 0usize..66, value in any::<u8>()) {
        let mut frame = valid_frame();
        let offset = offset % frame.len();
        frame[offset] = value;
        poke(&frame);
    }

    /// Random truncation combined with random corruption never panics.
    #[test]
    fn truncated_corrupted_frames_never_panic(
        cut in 0usize..66,
        mutations in prop::collection::vec((0usize..66, any::<u8>()), 0..8),
    ) {
        let mut frame = valid_frame();
        for (off, val) in mutations {
            let off = off % frame.len();
            frame[off] = val;
        }
        frame.truncate(cut.min(frame.len()));
        poke(&frame);
    }

    /// Arbitrary garbage is either rejected or parses into a packet whose
    /// accessors all behave.
    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        poke(&bytes);
    }

    /// Whatever `from_frame` accepts must re-serialize to the same bytes.
    #[test]
    fn accepted_frames_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = Packet::from_frame(&bytes) {
            prop_assert_eq!(p.as_bytes(), &bytes[..]);
        }
    }
}
