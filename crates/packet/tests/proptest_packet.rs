//! Property-based tests for the packet substrate.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use std::net::{Ipv4Addr, SocketAddrV4};

use proptest::prelude::*;
use speedybox_packet::{HeaderField, Packet, PacketBuilder, Protocol};

fn arb_addr() -> impl Strategy<Value = SocketAddrV4> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| SocketAddrV4::new(Ipv4Addr::from(ip), port))
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (arb_addr(), arb_addr(), prop::bool::ANY, prop::collection::vec(any::<u8>(), 0..512), 1u8..=255)
        .prop_map(|(src, dst, tcp, payload, ttl)| {
            let mut b = if tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() };
            b.src(src).dst(dst).payload(&payload).ttl(ttl);
            b.build()
        })
}

proptest! {
    /// Building then reparsing preserves the frame exactly.
    #[test]
    fn frame_round_trip(pkt in arb_packet()) {
        let re = Packet::from_frame(pkt.as_bytes()).unwrap();
        prop_assert_eq!(re.as_bytes(), pkt.as_bytes());
    }

    /// Builder output always carries valid checksums.
    #[test]
    fn built_checksums_valid(pkt in arb_packet()) {
        prop_assert!(pkt.verify_checksums().unwrap());
    }

    /// set_field followed by get_field returns the written value for all
    /// field kinds, and fix_checksums restores validity.
    #[test]
    fn set_get_consistency(mut pkt in arb_packet(), ip in any::<u32>(), port in any::<u16>()) {
        let ip = Ipv4Addr::from(ip);
        pkt.set_field(HeaderField::DstIp, ip).unwrap();
        pkt.set_field(HeaderField::SrcPort, port).unwrap();
        prop_assert_eq!(pkt.get_field(HeaderField::DstIp).unwrap().as_ipv4(), ip);
        prop_assert_eq!(pkt.get_field(HeaderField::SrcPort).unwrap().as_port(), port);
        pkt.fix_checksums().unwrap();
        prop_assert!(pkt.verify_checksums().unwrap());
    }

    /// encap_ah/decap_ah is a perfect inverse, any depth up to headroom.
    #[test]
    fn encap_decap_inverse(mut pkt in arb_packet(), depth in 1usize..5) {
        let original = pkt.as_bytes().to_vec();
        for i in 0..depth {
            pkt.encap_ah(i as u32, 0).unwrap();
        }
        prop_assert_eq!(pkt.ah_depth(), depth);
        // Payload visible through arbitrary nesting.
        let _ = pkt.payload().unwrap();
        for _ in 0..depth {
            pkt.decap_ah().unwrap();
        }
        prop_assert_eq!(pkt.as_bytes(), &original[..]);
    }

    /// The FID is a pure function of the 5-tuple and respects the 20-bit
    /// bound.
    #[test]
    fn fid_pure_and_bounded(pkt in arb_packet()) {
        let ft = pkt.five_tuple().unwrap();
        let f1 = ft.fid();
        let f2 = ft.fid();
        prop_assert_eq!(f1, f2);
        prop_assert!(f1.value() < (1 << speedybox_packet::FID_BITS));
    }

    /// 5-tuple reflects builder inputs.
    #[test]
    fn five_tuple_matches_builder(src in arb_addr(), dst in arb_addr(), tcp in prop::bool::ANY) {
        let mut b = if tcp { PacketBuilder::tcp() } else { PacketBuilder::udp() };
        let pkt = b.src(src).dst(dst).build();
        let ft = pkt.five_tuple().unwrap();
        prop_assert_eq!(ft.src_ip, *src.ip());
        prop_assert_eq!(ft.dst_ip, *dst.ip());
        prop_assert_eq!(ft.src_port, src.port());
        prop_assert_eq!(ft.dst_port, dst.port());
        prop_assert_eq!(ft.protocol, if tcp { Protocol::Tcp } else { Protocol::Udp });
    }

    /// `Packet::from_frame` is total: arbitrary bytes produce Ok or Err,
    /// never a panic, and accepted frames support all accessors.
    #[test]
    fn from_frame_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(p) = Packet::from_frame(&bytes) {
            let _ = p.five_tuple();
            let _ = p.payload();
            let _ = p.tcp_flags();
            let _ = p.ah_depth();
            let _ = p.verify_checksums();
        }
    }

    /// Mutating a valid packet's frame bytes and re-parsing is also total.
    #[test]
    fn corrupted_frames_never_panic(pkt in arb_packet(), idx in any::<prop::sample::Index>(), b in any::<u8>()) {
        let mut bytes = pkt.as_bytes().to_vec();
        let i = idx.index(bytes.len());
        bytes[i] = b;
        if let Ok(p) = Packet::from_frame(&bytes) {
            let _ = p.five_tuple();
            let _ = p.payload();
        }
    }

    /// pcap serialization round-trips arbitrary traces (timestamps
    /// quantized to the classic format's microsecond precision).
    #[test]
    fn pcap_round_trip(pkts in prop::collection::vec(arb_packet(), 0..8), ts in prop::collection::vec(0u64..10_000_000, 8)) {
        use speedybox_packet::pcap::{read_pcap, write_pcap};
        use speedybox_packet::trace::{Trace, TraceRecord};
        let t: Trace = pkts
            .iter()
            .zip(&ts)
            .map(|(p, &us)| TraceRecord::capture(us * 1_000, p))
            .collect();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let t2 = read_pcap(&buf[..]).unwrap();
        prop_assert_eq!(t, t2);
    }

    /// Trace line-format round-trips arbitrary packets.


    #[test]
    fn trace_round_trip(pkts in prop::collection::vec(arb_packet(), 0..8)) {
        use speedybox_packet::trace::{Trace, TraceRecord};
        let t: Trace = pkts
            .iter()
            .enumerate()
            .map(|(i, p)| TraceRecord::capture(i as u64, p))
            .collect();
        let mut buf = Vec::new();
        t.write_lines(&mut buf).unwrap();
        let t2 = Trace::read_lines(&buf[..]).unwrap();
        prop_assert_eq!(t, t2);
    }
}
