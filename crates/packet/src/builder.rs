//! Packet synthesis for tests, examples and workload generation.

use std::net::SocketAddrV4;

use crate::five_tuple::Protocol;
use crate::headers::{Ethernet, Ipv4, Tcp, Udp, ETHERNET_LEN, IPV4_LEN, TCP_LEN, UDP_LEN};
use crate::packet::Packet;

/// A builder for Ethernet/IPv4/{TCP,UDP} packets.
///
/// Non-consuming (methods take `&mut self` and return `&mut Self`) so it can
/// be reused across the many packets of a flow:
///
/// ```
/// use speedybox_packet::PacketBuilder;
///
/// let mut b = PacketBuilder::tcp();
/// b.src("10.0.0.1:4000".parse().unwrap()).dst("10.0.0.2:80".parse().unwrap());
/// let syn = b.flags(speedybox_packet::TcpFlags::SYN).build();
/// let data = b.flags(speedybox_packet::TcpFlags::ACK).payload(b"abc").build();
/// assert_eq!(syn.five_tuple().unwrap(), data.five_tuple().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    protocol: Protocol,
    eth: Ethernet,
    src: SocketAddrV4,
    dst: SocketAddrV4,
    ttl: u8,
    tos: u8,
    seq: u32,
    flags: u8,
    payload: Vec<u8>,
    pad_to: Option<usize>,
    vlan: Option<u16>,
}

impl PacketBuilder {
    /// Starts building a TCP packet.
    #[must_use]
    pub fn tcp() -> Self {
        Self::new(Protocol::Tcp)
    }

    /// Starts building a UDP packet.
    #[must_use]
    pub fn udp() -> Self {
        Self::new(Protocol::Udp)
    }

    fn new(protocol: Protocol) -> Self {
        Self {
            protocol,
            eth: Ethernet::default(),
            src: SocketAddrV4::new([10, 0, 0, 1].into(), 10000),
            dst: SocketAddrV4::new([10, 0, 0, 2].into(), 80),
            ttl: 64,
            tos: 0,
            seq: 0,
            flags: crate::packet::TcpFlags::ACK,
            payload: Vec::new(),
            pad_to: None,
            vlan: None,
        }
    }

    /// Sets the source address and port.
    pub fn src(&mut self, src: SocketAddrV4) -> &mut Self {
        self.src = src;
        self
    }

    /// Sets the destination address and port.
    pub fn dst(&mut self, dst: SocketAddrV4) -> &mut Self {
        self.dst = dst;
        self
    }

    /// Sets the IPv4 TTL (default 64).
    pub fn ttl(&mut self, ttl: u8) -> &mut Self {
        self.ttl = ttl;
        self
    }

    /// Sets the IPv4 ToS byte (default 0).
    pub fn tos(&mut self, tos: u8) -> &mut Self {
        self.tos = tos;
        self
    }

    /// Sets the TCP sequence number (ignored for UDP).
    pub fn seq(&mut self, seq: u32) -> &mut Self {
        self.seq = seq;
        self
    }

    /// Sets the TCP flag bits (ignored for UDP; default ACK).
    pub fn flags(&mut self, flags: u8) -> &mut Self {
        self.flags = flags;
        self
    }

    /// Sets the application payload.
    pub fn payload(&mut self, payload: &[u8]) -> &mut Self {
        self.payload = payload.to_vec();
        self
    }

    /// Pads (with zero bytes of payload) so the full frame is at least
    /// `frame_len` bytes — e.g. the paper's 64 B minimum-size packets.
    pub fn pad_to(&mut self, frame_len: usize) -> &mut Self {
        self.pad_to = Some(frame_len);
        self
    }

    /// Tags the frame with an 802.1Q VLAN ID (low 12 bits used).
    pub fn vlan(&mut self, id: u16) -> &mut Self {
        self.vlan = Some(id & 0x0fff);
        self
    }

    /// The L4 header length for the chosen protocol.
    fn l4_hdr(&self) -> usize {
        match self.protocol {
            Protocol::Tcp => TCP_LEN,
            Protocol::Udp => UDP_LEN,
        }
    }

    /// The L2 header length (Ethernet, plus a VLAN tag when set).
    fn l2_len(&self) -> usize {
        ETHERNET_LEN + if self.vlan.is_some() { 4 } else { 0 }
    }

    /// The padded payload length [`PacketBuilder::build`] will emit.
    fn payload_len(&self) -> usize {
        let mut payload_len = self.payload.len();
        if let Some(target) = self.pad_to {
            let min_payload = target.saturating_sub(self.l2_len() + IPV4_LEN + self.l4_hdr());
            payload_len = payload_len.max(min_payload);
        }
        payload_len
    }

    /// The full frame length [`PacketBuilder::build`] will emit.
    #[must_use]
    pub fn frame_len(&self) -> usize {
        self.l2_len() + IPV4_LEN + self.l4_hdr() + self.payload_len()
    }

    /// Writes the frame's headers and payload into `frame`, which must be
    /// exactly [`PacketBuilder::frame_len`] zeroed bytes. Checksums are
    /// not computed here.
    fn write_frame(&self, frame: &mut [u8]) {
        let l4_hdr = self.l4_hdr();
        let l2_len = self.l2_len();
        let payload_len = self.payload_len();
        match self.vlan {
            None => self.eth.write(&mut frame[..ETHERNET_LEN]),
            Some(id) => {
                let tagged = crate::headers::Ethernet {
                    ethertype: crate::headers::ETHERTYPE_VLAN,
                    ..self.eth
                };
                tagged.write(&mut frame[..ETHERNET_LEN]);
                frame[14..16].copy_from_slice(&id.to_be_bytes());
                frame[16..18].copy_from_slice(&self.eth.ethertype.to_be_bytes());
            }
        }
        let ip = Ipv4 {
            tos: self.tos,
            #[allow(clippy::cast_possible_truncation)] // payload is MTU-bounded
            total_len: (IPV4_LEN + l4_hdr + payload_len) as u16,
            ttl: self.ttl,
            protocol: self.protocol.number(),
            src: *self.src.ip(),
            dst: *self.dst.ip(),
            ..Ipv4::default()
        };
        ip.write(&mut frame[l2_len..l2_len + IPV4_LEN]);
        let l4_off = l2_len + IPV4_LEN;
        match self.protocol {
            Protocol::Tcp => {
                let tcp = Tcp {
                    src_port: self.src.port(),
                    dst_port: self.dst.port(),
                    seq: self.seq,
                    flags: self.flags,
                    window: 65535,
                    ..Tcp::default()
                };
                tcp.write(&mut frame[l4_off..l4_off + TCP_LEN]);
            }
            Protocol::Udp => {
                let udp = Udp {
                    src_port: self.src.port(),
                    dst_port: self.dst.port(),
                    #[allow(clippy::cast_possible_truncation)] // payload is MTU-bounded
                    length: (UDP_LEN + payload_len) as u16,
                    checksum: 0,
                };
                udp.write(&mut frame[l4_off..l4_off + UDP_LEN]);
            }
        }
        frame[l4_off + l4_hdr..l4_off + l4_hdr + self.payload.len()].copy_from_slice(&self.payload);
    }

    /// Builds the packet. Headers are written with valid lengths and
    /// checksums.
    #[must_use]
    pub fn build(&self) -> Packet {
        let mut frame = vec![0u8; self.frame_len()];
        self.write_frame(&mut frame);
        let mut pkt = Packet::from_valid_frame(&frame);
        pkt.fix_checksums().expect("builder produces parseable packets");
        pkt
    }

    /// [`PacketBuilder::build`], writing directly into a pooled buffer from
    /// `mag` — no intermediate frame vector, no heap allocation while the
    /// pool holds out. Byte-identical output to `build()`.
    #[must_use]
    pub fn build_pooled(&self, mag: &mut crate::pool::Magazine) -> Packet {
        let mut buf = mag.take();
        buf.clear();
        buf.resize(crate::packet::HEADROOM + self.frame_len(), 0);
        self.write_frame(&mut buf[crate::packet::HEADROOM..]);
        let mut pkt = Packet::from_pooled(buf);
        pkt.fix_checksums().expect("builder produces parseable packets");
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    #[test]
    fn built_packets_have_valid_checksums() {
        let p = PacketBuilder::tcp().payload(b"x").build();
        assert!(p.verify_checksums().unwrap());
        let u = PacketBuilder::udp().payload(b"x").build();
        assert!(u.verify_checksums().unwrap());
    }

    #[test]
    fn pad_to_64_bytes() {
        let p = PacketBuilder::tcp().pad_to(64).build();
        assert_eq!(p.len(), 64);
        // Padding never truncates a longer payload.
        let big = PacketBuilder::tcp().payload(&[0xaa; 200]).pad_to(64).build();
        assert_eq!(big.len(), ETHERNET_LEN + IPV4_LEN + TCP_LEN + 200);
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = PacketBuilder::tcp();
        b.src("1.1.1.1:1".parse().unwrap()).dst("2.2.2.2:2".parse().unwrap());
        let a = b.flags(TcpFlags::SYN).build();
        let c = b.flags(TcpFlags::FIN).build();
        assert!(a.tcp_flags().syn());
        assert!(c.tcp_flags().fin());
        assert_eq!(a.five_tuple().unwrap(), c.five_tuple().unwrap());
    }

    #[test]
    fn pooled_build_matches_heap_build() {
        use crate::pool::{Magazine, PacketPool};
        let pool = std::sync::Arc::new(PacketPool::with_capacity(2048, 8));
        let mut mag = Magazine::new(pool);
        for builder in [
            PacketBuilder::tcp().payload(b"hello").flags(TcpFlags::SYN).clone(),
            PacketBuilder::udp().payload(&[7u8; 90]).pad_to(128).clone(),
            PacketBuilder::tcp().vlan(12).pad_to(64).clone(),
        ] {
            let heap = builder.build();
            let pooled = builder.build_pooled(&mut mag);
            assert_eq!(heap.as_bytes(), pooled.as_bytes());
            assert_eq!(builder.frame_len(), heap.len());
            assert!(pooled.verify_checksums().unwrap());
        }
    }

    #[test]
    fn ip_total_len_matches() {
        let p = PacketBuilder::udp().payload(&[1, 2, 3]).build();
        let ip = p.ipv4().unwrap();
        assert_eq!(ip.total_len as usize, p.len() - ETHERNET_LEN);
        let udp = p.udp().unwrap();
        assert_eq!(udp.length as usize, UDP_LEN + 3);
    }
}
