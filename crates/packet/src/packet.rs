//! The owned, mutable packet type used throughout SpeedyBox.
//!
//! A [`Packet`] models a DPDK mbuf: a byte buffer with *headroom* so that
//! encapsulation prepends headers without copying the payload, plus a small
//! metadata area carrying the SpeedyBox [`Fid`] (paper §VI-B attaches the
//! 20-bit FID "directly to the packet as a meta-data").

use std::fmt;

use bytes::BytesMut;

use crate::checksum;
use crate::field::{FieldValue, HeaderField};
use crate::five_tuple::{Fid, FiveTuple, Protocol};
use crate::headers::{AuthHeader, Ethernet, Ipv4, AH_LEN, ETHERNET_LEN, IPPROTO_AH, UDP_LEN};
use crate::Result;

/// Headroom reserved in front of every packet for encapsulation.
pub const HEADROOM: usize = 128;

/// [`AH_LEN`] as it appears in 16-bit IPv4 length arithmetic.
#[allow(clippy::cast_possible_truncation)] // AH_LEN = 24
const AH_LEN_U16: u16 = AH_LEN as u16;

/// Errors from parsing or manipulating packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is too short for the header being parsed.
    Truncated {
        /// Bytes needed by the parser.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The bytes do not form a valid header.
    Malformed(&'static str),
    /// The packet carries an L4 protocol we do not model.
    UnsupportedProtocol(u8),
    /// A decapsulation was requested but no such header is present.
    NothingToDecap,
    /// Headroom was exhausted by repeated encapsulation.
    HeadroomExhausted,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { needed, have } => {
                write!(f, "packet truncated: need {needed} bytes, have {have}")
            }
            PacketError::Malformed(what) => write!(f, "malformed packet: {what}"),
            PacketError::UnsupportedProtocol(p) => write!(f, "unsupported IP protocol {p}"),
            PacketError::NothingToDecap => f.write_str("no encapsulation header to remove"),
            PacketError::HeadroomExhausted => f.write_str("packet headroom exhausted"),
        }
    }
}

impl std::error::Error for PacketError {}

/// TCP flag bit constants and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is finished.
    pub const FIN: u8 = 0x01;
    /// SYN: synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// RST: reset the connection.
    pub const RST: u8 = 0x04;
    /// PSH: push buffered data.
    pub const PSH: u8 = 0x08;
    /// ACK: acknowledgement field significant.
    pub const ACK: u8 = 0x10;

    /// True if the SYN bit is set.
    #[must_use]
    pub fn syn(self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// True if the FIN bit is set.
    #[must_use]
    pub fn fin(self) -> bool {
        self.0 & Self::FIN != 0
    }

    /// True if the RST bit is set.
    #[must_use]
    pub fn rst(self) -> bool {
        self.0 & Self::RST != 0
    }

    /// True if the ACK bit is set.
    #[must_use]
    pub fn ack(self) -> bool {
        self.0 & Self::ACK != 0
    }

    /// True if this packet ends a flow (FIN or RST) — the trigger for
    /// SpeedyBox's rule garbage collection (paper §VI-B "Tracking Flow
    /// State").
    #[must_use]
    pub fn closes_flow(self) -> bool {
        self.fin() || self.rst()
    }
}

/// Resolved frame-relative offsets of the L3/L4 headers plus the transport
/// protocol — the anchor table compiled fast-path programs use for
/// straight-line masked word writes (resolved once per packet, not per op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderLayout {
    /// Offset of the IPv4 header from the frame start.
    pub l3: usize,
    /// Offset of the innermost L4 (TCP/UDP) header from the frame start,
    /// past any AH encapsulation layers.
    pub l4: usize,
    /// The transport protocol found at `l4`.
    pub protocol: Protocol,
}

/// An owned Ethernet/IPv4/{TCP,UDP} packet with mbuf-style headroom and
/// SpeedyBox flow metadata.
#[derive(Clone)]
pub struct Packet {
    buf: BytesMut,
    /// Offset of the Ethernet header within `buf`.
    start: usize,
    /// SpeedyBox flow ID metadata (assigned by the Packet Classifier).
    fid: Option<Fid>,
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Packet");
        s.field("len", &self.len()).field("fid", &self.fid);
        if let Ok(ft) = self.five_tuple() {
            s.field("flow", &ft.to_string());
        }
        s.finish()
    }
}

impl Packet {
    /// Wraps a full Ethernet frame, validating that it parses down to a
    /// supported L4 header.
    ///
    /// # Errors
    /// Any parse failure of the Ethernet, IPv4, AH chain or L4 header.
    pub fn from_frame(frame: &[u8]) -> Result<Self> {
        let pkt = Self::assemble(BytesMut::with_capacity(HEADROOM + frame.len()), frame);
        pkt.validate()?;
        Ok(pkt)
    }

    /// Builds a packet from pre-validated parts; used by [`crate::PacketBuilder`].
    pub(crate) fn from_valid_frame(frame: &[u8]) -> Self {
        Self::assemble(BytesMut::with_capacity(HEADROOM + frame.len()), frame)
    }

    /// The one buffer-setup path every constructor funnels through: lays
    /// `frame` out after [`HEADROOM`] zero bytes in `buf` (cleared first),
    /// whether `buf` is fresh from the heap or recycled from a
    /// [`crate::PacketPool`]. No validation — callers layer that on.
    pub(crate) fn assemble(mut buf: BytesMut, frame: &[u8]) -> Self {
        buf.clear();
        buf.resize(HEADROOM, 0);
        buf.extend_from_slice(frame);
        Self { buf, start: HEADROOM, fid: None }
    }

    /// Wraps a buffer whose frame bytes were written in place after
    /// [`HEADROOM`] (the builder's direct-into-pooled-buffer path).
    pub(crate) fn from_pooled(buf: BytesMut) -> Self {
        debug_assert!(buf.len() >= HEADROOM);
        Self { buf, start: HEADROOM, fid: None }
    }

    /// Surrenders the backing buffer for recycling into a
    /// [`crate::PacketPool`].
    pub(crate) fn into_buf(self) -> BytesMut {
        self.buf
    }

    pub(crate) fn validate(&self) -> Result<()> {
        let ip = self.ipv4()?;
        // The declared datagram must fit its own headers and the frame
        // must carry all of it. A frame longer than `total_len` is fine
        // (Ethernet pads short frames to the 64-byte minimum); a shorter
        // one is a truncation that would otherwise slip through as long as
        // the L4 header happened to survive the cut.
        let declared = usize::from(ip.total_len);
        if declared < ip.header_len {
            return Err(PacketError::Malformed("IPv4 total length below header length"));
        }
        let l3 = self.l3_offset();
        let avail = self.buf.len() - l3;
        if avail < declared {
            return Err(PacketError::Truncated { needed: declared, have: avail });
        }
        let mut proto = ip.protocol;
        let mut off = l3 + ip.header_len;
        while proto == IPPROTO_AH {
            let ah = AuthHeader::parse(&self.buf[off..])?;
            proto = ah.next_header;
            off += AH_LEN;
        }
        let l4_hdr = match Protocol::from_number(proto) {
            Some(Protocol::Tcp) => crate::headers::Tcp::parse(&self.buf[off..])?.header_len,
            Some(Protocol::Udp) => {
                crate::headers::Udp::parse(&self.buf[off..])?;
                UDP_LEN
            }
            None => return Err(PacketError::UnsupportedProtocol(proto)),
        };
        // The L4 header must lie inside the declared datagram, not in
        // trailing padding bytes that happen to parse.
        let needed = off + l4_hdr - l3;
        if declared < needed {
            return Err(PacketError::Truncated { needed, have: declared });
        }
        Ok(())
    }

    /// One past the last byte of the IPv4 datagram within `buf`: the
    /// logical end of the packet, excluding any Ethernet trailer padding.
    fn datagram_end(&self) -> Result<usize> {
        let ip = self.ipv4()?;
        Ok((self.l3_offset() + usize::from(ip.total_len)).min(self.buf.len()))
    }

    /// The complete frame bytes (Ethernet onward).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Total frame length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True if the frame is empty (never the case for validated packets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining headroom available for encapsulation.
    #[must_use]
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// The SpeedyBox flow ID attached by the Packet Classifier, if any.
    #[must_use]
    pub fn fid(&self) -> Option<Fid> {
        self.fid
    }

    /// Attaches flow-ID metadata (Classifier responsibility).
    pub fn set_fid(&mut self, fid: Fid) {
        self.fid = Some(fid);
    }

    /// Detaches flow-ID metadata ("When the packet leaves the service chain,
    /// SpeedyBox detaches the meta-data", paper §VI-B).
    pub fn clear_fid(&mut self) {
        self.fid = None;
    }

    // ---- offsets ----

    /// Offset of the IPv4 header: after the Ethernet header, plus a
    /// single 802.1Q VLAN tag when present (real captures carry them).
    fn l3_offset(&self) -> usize {
        let et_off = self.start + 12;
        let ethertype = match (self.buf.get(et_off), self.buf.get(et_off + 1)) {
            (Some(&a), Some(&b)) => u16::from_be_bytes([a, b]),
            _ => 0,
        };
        if ethertype == crate::headers::ETHERTYPE_VLAN {
            self.start + ETHERNET_LEN + 4
        } else {
            self.start + ETHERNET_LEN
        }
    }

    /// The 802.1Q VLAN ID, if the frame is tagged.
    #[must_use]
    pub fn vlan_id(&self) -> Option<u16> {
        let et_off = self.start + 12;
        let ethertype = u16::from_be_bytes([*self.buf.get(et_off)?, *self.buf.get(et_off + 1)?]);
        if ethertype != crate::headers::ETHERTYPE_VLAN {
            return None;
        }
        let tci = u16::from_be_bytes([*self.buf.get(et_off + 2)?, *self.buf.get(et_off + 3)?]);
        Some(tci & 0x0fff)
    }

    /// Bytes from `off` to the end, or an empty slice if `off` is past the
    /// end (so header parsers report `Truncated` instead of panicking).
    fn tail(&self, off: usize) -> &[u8] {
        self.buf.get(off..).unwrap_or(&[])
    }

    /// Patches protocol/total-length in the IPv4 header in place and
    /// recomputes its checksum over the real header length — never
    /// rewriting the header wholesale, so IPv4 options survive.
    fn patch_ipv4(&mut self, protocol: u8, total_len: u16, header_len: usize) {
        let l3 = self.l3_offset();
        self.buf[l3 + 2..l3 + 4].copy_from_slice(&total_len.to_be_bytes());
        self.buf[l3 + 9] = protocol;
        self.buf[l3 + 10..l3 + 12].copy_from_slice(&[0, 0]);
        let ck = checksum::internet_checksum(&self.buf[l3..l3 + header_len]);
        self.buf[l3 + 10..l3 + 12].copy_from_slice(&ck.to_be_bytes());
    }

    fn l4_offset_and_proto(&self) -> Result<(usize, Protocol)> {
        let ip = self.ipv4()?;
        let mut proto = ip.protocol;
        let mut off = self.l3_offset() + ip.header_len;
        while proto == IPPROTO_AH {
            let ah = AuthHeader::parse(&self.buf[off..])?;
            proto = ah.next_header;
            off += AH_LEN;
        }
        Protocol::from_number(proto)
            .map(|p| (off, p))
            .ok_or(PacketError::UnsupportedProtocol(proto))
    }

    /// Resolves the current header layout: frame-relative L3/L4 offsets
    /// and the transport protocol, walking any AH layers once.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn layout(&self) -> Result<HeaderLayout> {
        let (l4_abs, protocol) = self.l4_offset_and_proto()?;
        Ok(HeaderLayout { l3: self.l3_offset() - self.start, l4: l4_abs - self.start, protocol })
    }

    /// Mutable access to the raw frame bytes (Ethernet onward). Compiled
    /// fast-path programs perform masked word writes here; keeping the
    /// checksums consistent is the caller's responsibility (see the
    /// incremental patch methods).
    #[must_use]
    pub fn frame_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.start..]
    }

    // ---- header views ----

    /// Parses the Ethernet header.
    ///
    /// # Errors
    /// Returns an error if the frame is truncated.
    pub fn ethernet(&self) -> Result<Ethernet> {
        Ethernet::parse(self.tail(self.start))
    }

    /// Parses the IPv4 header.
    ///
    /// # Errors
    /// Returns an error if the frame is truncated or not IPv4.
    pub fn ipv4(&self) -> Result<Ipv4> {
        Ipv4::parse(self.tail(self.l3_offset()))
    }

    /// Parses the TCP header (error for UDP packets).
    ///
    /// # Errors
    /// Returns [`PacketError::Malformed`] if the packet is not TCP.
    pub fn tcp(&self) -> Result<crate::headers::Tcp> {
        let (off, proto) = self.l4_offset_and_proto()?;
        if proto != Protocol::Tcp {
            return Err(PacketError::Malformed("not a TCP packet"));
        }
        crate::headers::Tcp::parse(&self.buf[off..])
    }

    /// Parses the UDP header (error for TCP packets).
    ///
    /// # Errors
    /// Returns [`PacketError::Malformed`] if the packet is not UDP.
    pub fn udp(&self) -> Result<crate::headers::Udp> {
        let (off, proto) = self.l4_offset_and_proto()?;
        if proto != Protocol::Udp {
            return Err(PacketError::Malformed("not a UDP packet"));
        }
        crate::headers::Udp::parse(&self.buf[off..])
    }

    /// TCP flags, or empty flags for UDP packets.
    #[must_use]
    pub fn tcp_flags(&self) -> TcpFlags {
        self.tcp().map(|t| TcpFlags(t.flags)).unwrap_or_default()
    }

    /// The transport protocol of this packet.
    ///
    /// # Errors
    /// Returns an error if parsing fails.
    pub fn protocol(&self) -> Result<Protocol> {
        self.l4_offset_and_proto().map(|(_, p)| p)
    }

    /// Extracts the flow 5-tuple from the current header values.
    ///
    /// Note: NFs rewriting headers change the 5-tuple; the stable flow
    /// identity is [`Packet::fid`].
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn five_tuple(&self) -> Result<FiveTuple> {
        let ip = self.ipv4()?;
        let (off, proto) = self.l4_offset_and_proto()?;
        let (sp, dp) = match proto {
            Protocol::Tcp => {
                let t = crate::headers::Tcp::parse(&self.buf[off..])?;
                (t.src_port, t.dst_port)
            }
            Protocol::Udp => {
                let u = crate::headers::Udp::parse(&self.buf[off..])?;
                (u.src_port, u.dst_port)
            }
        };
        Ok(FiveTuple::new(ip.src, sp, ip.dst, dp, proto))
    }

    // ---- payload ----

    /// The application payload (after the L4 header).
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn payload(&self) -> Result<&[u8]> {
        let (off, proto) = self.l4_offset_and_proto()?;
        let hdr = match proto {
            Protocol::Tcp => crate::headers::Tcp::parse(self.tail(off))?.header_len,
            Protocol::Udp => UDP_LEN,
        };
        // Bounded by `total_len`: Ethernet trailer padding is not payload.
        let end = self.datagram_end()?;
        Ok(&self.buf[(off + hdr).min(end)..end])
    }

    /// Mutable access to the application payload.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn payload_mut(&mut self) -> Result<&mut [u8]> {
        let (off, proto) = self.l4_offset_and_proto()?;
        let hdr = match proto {
            Protocol::Tcp => crate::headers::Tcp::parse(self.tail(off))?.header_len,
            Protocol::Udp => UDP_LEN,
        };
        let end = self.datagram_end()?;
        Ok(&mut self.buf[(off + hdr).min(end)..end])
    }

    // ---- field access ----

    /// Reads a named header field.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn get_field(&self, field: HeaderField) -> Result<FieldValue> {
        Ok(match field {
            HeaderField::SrcMac => FieldValue::from(self.ethernet()?.src_mac),
            HeaderField::DstMac => FieldValue::from(self.ethernet()?.dst_mac),
            HeaderField::SrcIp => FieldValue::from(self.ipv4()?.src),
            HeaderField::DstIp => FieldValue::from(self.ipv4()?.dst),
            HeaderField::SrcPort => {
                let (off, proto) = self.l4_offset_and_proto()?;
                let _ = proto;
                FieldValue::from(u16::from_be_bytes([self.buf[off], self.buf[off + 1]]))
            }
            HeaderField::DstPort => {
                let (off, _) = self.l4_offset_and_proto()?;
                FieldValue::from(u16::from_be_bytes([self.buf[off + 2], self.buf[off + 3]]))
            }
            HeaderField::Ttl => FieldValue::from(self.ipv4()?.ttl),
            HeaderField::Tos => FieldValue::from(self.ipv4()?.tos),
        })
    }

    /// Writes a named header field in place.
    ///
    /// Checksums are *not* updated; call [`Packet::fix_checksums`] once all
    /// modifications are applied, mirroring SpeedyBox's single end-of-
    /// consolidation fix-up.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn set_field(&mut self, field: HeaderField, value: impl Into<FieldValue>) -> Result<()> {
        let value = value.into();
        match field {
            HeaderField::SrcMac => {
                let s = self.start;
                self.buf[s + 6..s + 12].copy_from_slice(&value.as_mac());
            }
            HeaderField::DstMac => {
                let s = self.start;
                self.buf[s..s + 6].copy_from_slice(&value.as_mac());
            }
            HeaderField::SrcIp => {
                let o = self.l3_offset() + 12;
                self.buf[o..o + 4].copy_from_slice(&value.as_ipv4().octets());
            }
            HeaderField::DstIp => {
                let o = self.l3_offset() + 16;
                self.buf[o..o + 4].copy_from_slice(&value.as_ipv4().octets());
            }
            HeaderField::SrcPort => {
                let (off, _) = self.l4_offset_and_proto()?;
                self.buf[off..off + 2].copy_from_slice(&value.as_port().to_be_bytes());
            }
            HeaderField::DstPort => {
                let (off, _) = self.l4_offset_and_proto()?;
                self.buf[off + 2..off + 4].copy_from_slice(&value.as_port().to_be_bytes());
            }
            HeaderField::Ttl => {
                let o = self.l3_offset() + 8;
                self.buf[o] = value.as_byte();
            }
            HeaderField::Tos => {
                let o = self.l3_offset() + 1;
                self.buf[o] = value.as_byte();
            }
        }
        Ok(())
    }

    /// Decrements TTL by one (saturating at zero), as routers and NATs do.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn decrement_ttl(&mut self) -> Result<()> {
        let ttl = self.get_field(HeaderField::Ttl)?.as_byte();
        self.set_field(HeaderField::Ttl, ttl.saturating_sub(1))
    }

    // ---- encap / decap ----

    /// Encapsulates the L4 segment in an IPsec Authentication Header,
    /// prepending into headroom (no payload copy).
    ///
    /// # Errors
    /// Returns [`PacketError::HeadroomExhausted`] if headroom is gone, or a
    /// parse error for an invalid packet.
    pub fn encap_ah(&mut self, spi: u32, seq: u32) -> Result<()> {
        if self.start < AH_LEN {
            return Err(PacketError::HeadroomExhausted);
        }
        let ip = self.ipv4()?;
        let l3 = self.l3_offset();
        let new_start = self.start - AH_LEN;
        // Shift Ethernet + IPv4 headers back by AH_LEN.
        self.buf.copy_within(self.start..l3 + ip.header_len, new_start);
        self.start = new_start;
        // Write the AH where the (shifted) IPv4 header now ends.
        let ah_off = self.l3_offset() + ip.header_len;
        let ah = AuthHeader::new(spi, seq, ip.protocol);
        ah.write(&mut self.buf[ah_off..ah_off + AH_LEN]);
        // Patch the IPv4 header: protocol = AH, total_len += AH_LEN.
        self.patch_ipv4(IPPROTO_AH, ip.total_len + AH_LEN_U16, ip.header_len);
        Ok(())
    }

    /// Removes the outermost Authentication Header, returning it.
    ///
    /// # Errors
    /// Returns [`PacketError::NothingToDecap`] if the packet carries no AH.
    pub fn decap_ah(&mut self) -> Result<AuthHeader> {
        let ip = self.ipv4()?;
        if ip.protocol != IPPROTO_AH {
            return Err(PacketError::NothingToDecap);
        }
        let l3 = self.l3_offset();
        let ah_off = l3 + self.ipv4()?.header_len;
        let ah = AuthHeader::parse(&self.buf[ah_off..])?;
        // Shift Ethernet + IPv4 forward over the AH.
        self.buf.copy_within(self.start..ah_off, self.start + AH_LEN);
        self.start += AH_LEN;
        // Patch the IPv4 header.
        self.patch_ipv4(ah.next_header, ip.total_len - AH_LEN_U16, ip.header_len);
        Ok(ah)
    }

    /// Number of AH encapsulation layers currently on the packet.
    #[must_use]
    pub fn ah_depth(&self) -> usize {
        let Ok(ip) = self.ipv4() else { return 0 };
        let mut depth = 0;
        let mut proto = ip.protocol;
        let mut off = self.l3_offset() + ip.header_len;
        while proto == IPPROTO_AH {
            let Ok(ah) = AuthHeader::parse(&self.buf[off..]) else { break };
            proto = ah.next_header;
            off += AH_LEN;
            depth += 1;
        }
        depth
    }

    // ---- checksums ----

    /// Recomputes the IPv4 header checksum and the L4 checksum.
    ///
    /// SpeedyBox performs this once per packet at the end of consolidation
    /// rather than inside every NF (paper §V-B).
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn fix_checksums(&mut self) -> Result<()> {
        // IPv4 checksum, recomputed in place (options preserved).
        let ip = self.ipv4()?;
        self.patch_ipv4(ip.protocol, ip.total_len, ip.header_len);
        // L4 checksum over pseudo-header + segment.
        let (off, proto) = self.l4_offset_and_proto()?;
        let ck_off = match proto {
            Protocol::Tcp => off + 16,
            Protocol::Udp => off + 6,
        };
        self.buf[ck_off..ck_off + 2].copy_from_slice(&[0, 0]);
        let end = self.datagram_end()?;
        let ck = checksum::l4_checksum(ip.src, ip.dst, proto.number(), &self.buf[off..end]);
        self.buf[ck_off..ck_off + 2].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Patches the IPv4 header checksum incrementally (RFC 1624) after
    /// covered 16-bit words summing to `old_sum` were rewritten to words
    /// summing to `new_sum`. O(1): no header bytes are re-read. The result
    /// is byte-identical to a full recompute whenever the stored checksum
    /// was valid for the old contents.
    pub fn patch_ipv4_checksum_incremental(&mut self, old_sum: u32, new_sum: u32) {
        let l3 = self.l3_offset();
        let old_ck = u16::from_be_bytes([self.buf[l3 + 10], self.buf[l3 + 11]]);
        let ck = checksum::incremental_update(old_ck, old_sum, new_sum);
        self.buf[l3 + 10..l3 + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Patches the L4 (TCP/UDP) checksum incrementally (RFC 1624),
    /// applying UDP's zero-transmits-as-`0xFFFF` rule (RFC 768) so the
    /// result mirrors what [`Packet::fix_checksums`] would store.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn patch_l4_checksum_incremental(&mut self, old_sum: u32, new_sum: u32) -> Result<()> {
        let (off, proto) = self.l4_offset_and_proto()?;
        let ck_off = match proto {
            Protocol::Tcp => off + 16,
            Protocol::Udp => off + 6,
        };
        let old_ck = u16::from_be_bytes([self.buf[ck_off], self.buf[ck_off + 1]]);
        let mut ck = checksum::incremental_update(old_ck, old_sum, new_sum);
        if ck == 0 && proto == Protocol::Udp {
            ck = 0xFFFF;
        }
        self.buf[ck_off..ck_off + 2].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// [`Packet::encap_ah`] from a precompiled `AH_LEN`-byte template: the
    /// SPI/sequence/ICV bytes are copied verbatim and only the
    /// next-header byte is patched from the packet's current protocol.
    /// Byte-identical to `encap_ah(spi, seq)` for a template produced by
    /// [`AuthHeader::write`] with the same SPI and sequence.
    ///
    /// # Errors
    /// Returns [`PacketError::HeadroomExhausted`] if headroom is gone, or a
    /// parse error for an invalid packet.
    pub fn encap_ah_template(&mut self, template: &[u8; AH_LEN]) -> Result<()> {
        if self.start < AH_LEN {
            return Err(PacketError::HeadroomExhausted);
        }
        let ip = self.ipv4()?;
        let l3 = self.l3_offset();
        let new_start = self.start - AH_LEN;
        self.buf.copy_within(self.start..l3 + ip.header_len, new_start);
        self.start = new_start;
        let ah_off = self.l3_offset() + ip.header_len;
        self.buf[ah_off..ah_off + AH_LEN].copy_from_slice(template);
        self.buf[ah_off] = ip.protocol;
        self.patch_ipv4(IPPROTO_AH, ip.total_len + AH_LEN_U16, ip.header_len);
        Ok(())
    }

    /// Verifies the IPv4 and L4 checksums.
    ///
    /// # Errors
    /// Returns an error if the packet does not parse.
    pub fn verify_checksums(&self) -> Result<bool> {
        let ip = self.ipv4()?;
        let l3 = self.l3_offset();
        if !checksum::verify(&self.buf[l3..l3 + ip.header_len]) {
            return Ok(false);
        }
        let (off, proto) = self.l4_offset_and_proto()?;
        let end = self.datagram_end()?;
        #[allow(clippy::cast_possible_truncation)] // datagram fits ip.total_len (u16)
        let acc = checksum::pseudo_header_sum(ip.src, ip.dst, proto.number(), (end - off) as u16);
        Ok(checksum::fold(checksum::sum_bytes(acc, &self.buf[off..end])) == 0xFFFF)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // test data built from small literals
    use std::net::Ipv4Addr;

    use super::*;
    use crate::builder::PacketBuilder;

    fn sample() -> Packet {
        PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"hello world")
            .build()
    }

    #[test]
    fn five_tuple_extraction() {
        let p = sample();
        let ft = p.five_tuple().unwrap();
        assert_eq!(ft.src_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.protocol, Protocol::Tcp);
    }

    #[test]
    fn set_and_get_every_field() {
        let mut p = sample();
        p.set_field(HeaderField::SrcIp, Ipv4Addr::new(1, 2, 3, 4)).unwrap();
        p.set_field(HeaderField::DstIp, Ipv4Addr::new(5, 6, 7, 8)).unwrap();
        p.set_field(HeaderField::SrcPort, 1111u16).unwrap();
        p.set_field(HeaderField::DstPort, 2222u16).unwrap();
        p.set_field(HeaderField::Ttl, 9u8).unwrap();
        p.set_field(HeaderField::Tos, 0x20u8).unwrap();
        p.set_field(HeaderField::SrcMac, [1, 1, 1, 1, 1, 1]).unwrap();
        p.set_field(HeaderField::DstMac, [2, 2, 2, 2, 2, 2]).unwrap();
        assert_eq!(p.get_field(HeaderField::SrcIp).unwrap().as_ipv4(), Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(p.get_field(HeaderField::DstIp).unwrap().as_ipv4(), Ipv4Addr::new(5, 6, 7, 8));
        assert_eq!(p.get_field(HeaderField::SrcPort).unwrap().as_port(), 1111);
        assert_eq!(p.get_field(HeaderField::DstPort).unwrap().as_port(), 2222);
        assert_eq!(p.get_field(HeaderField::Ttl).unwrap().as_byte(), 9);
        assert_eq!(p.get_field(HeaderField::Tos).unwrap().as_byte(), 0x20);
        assert_eq!(p.get_field(HeaderField::SrcMac).unwrap().as_mac(), [1, 1, 1, 1, 1, 1]);
        assert_eq!(p.get_field(HeaderField::DstMac).unwrap().as_mac(), [2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn modification_keeps_payload() {
        let mut p = sample();
        p.set_field(HeaderField::DstIp, Ipv4Addr::new(9, 9, 9, 9)).unwrap();
        assert_eq!(p.payload().unwrap(), b"hello world");
    }

    #[test]
    fn checksums_fix_and_verify() {
        let mut p = sample();
        assert!(p.verify_checksums().unwrap());
        p.set_field(HeaderField::DstIp, Ipv4Addr::new(9, 9, 9, 9)).unwrap();
        assert!(!p.verify_checksums().unwrap());
        p.fix_checksums().unwrap();
        assert!(p.verify_checksums().unwrap());
    }

    #[test]
    fn encap_decap_round_trip() {
        let mut p = sample();
        let before = p.as_bytes().to_vec();
        let before_len = p.len();
        p.encap_ah(0xabc, 1).unwrap();
        assert_eq!(p.len(), before_len + AH_LEN);
        assert_eq!(p.ah_depth(), 1);
        assert_eq!(p.payload().unwrap(), b"hello world");
        // 5-tuple still visible through the AH.
        assert_eq!(p.five_tuple().unwrap().dst_port, 80);
        let ah = p.decap_ah().unwrap();
        assert_eq!(ah.spi, 0xabc);
        assert_eq!(p.ah_depth(), 0);
        assert_eq!(p.len(), before_len);
        assert_eq!(p.as_bytes(), &before[..]);
    }

    #[test]
    fn nested_encap() {
        let mut p = sample();
        p.encap_ah(1, 1).unwrap();
        p.encap_ah(2, 1).unwrap();
        assert_eq!(p.ah_depth(), 2);
        assert_eq!(p.decap_ah().unwrap().spi, 2);
        assert_eq!(p.decap_ah().unwrap().spi, 1);
        assert!(matches!(p.decap_ah(), Err(PacketError::NothingToDecap)));
    }

    #[test]
    fn encap_exhausts_headroom() {
        let mut p = sample();
        let mut n = 0;
        while p.encap_ah(0, n).is_ok() {
            n += 1;
            assert!(n < 100, "headroom never exhausted");
        }
        assert_eq!(n as usize, HEADROOM / AH_LEN);
    }

    #[test]
    fn fid_metadata_lifecycle() {
        let mut p = sample();
        assert_eq!(p.fid(), None);
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        assert_eq!(p.fid(), Some(fid));
        // FID survives header rewrites (the whole point of the metadata).
        p.set_field(HeaderField::DstIp, Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        assert_eq!(p.fid(), Some(fid));
        p.clear_fid();
        assert_eq!(p.fid(), None);
    }

    #[test]
    fn tcp_flags_parsing() {
        let p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::SYN | TcpFlags::ACK)
            .build();
        let f = p.tcp_flags();
        assert!(f.syn());
        assert!(f.ack());
        assert!(!f.fin());
        assert!(!f.closes_flow());
        let p2 = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::FIN)
            .build();
        assert!(p2.tcp_flags().closes_flow());
    }

    #[test]
    fn udp_packets_work() {
        let p = PacketBuilder::udp()
            .src("10.0.0.1:53".parse().unwrap())
            .dst("10.0.0.2:5353".parse().unwrap())
            .payload(b"dns-ish")
            .build();
        assert_eq!(p.five_tuple().unwrap().protocol, Protocol::Udp);
        assert_eq!(p.payload().unwrap(), b"dns-ish");
        assert!(p.tcp().is_err());
        assert!(p.udp().is_ok());
        assert_eq!(p.tcp_flags(), TcpFlags::default());
    }

    /// Builds a frame with IPv4 options (IHL=6) and TCP options
    /// (offset=6), as real captures contain.
    fn frame_with_options() -> Vec<u8> {
        let base = sample();
        let b = base.as_bytes();
        let mut f = Vec::new();
        f.extend_from_slice(&b[..14]); // Ethernet
                                       // IPv4 with one 4-byte NOP-padded option.
        let mut ip = b[14..34].to_vec();
        ip[0] = 0x46; // IHL = 6
        let payload_after_ip = &b[34..];
        // 24-byte IP header + the original L4 bytes + the 4 TCP option
        // bytes appended below.
        let new_total = (24 + payload_after_ip.len() + 4) as u16;
        ip[2..4].copy_from_slice(&new_total.to_be_bytes());
        // Recompute the header checksum over header + options.
        ip.extend_from_slice(&[0x01, 0x01, 0x01, 0x00]); // NOP NOP NOP EOOL
        ip[10..12].copy_from_slice(&[0, 0]);
        let ck = crate::checksum::internet_checksum(&ip);
        ip[10..12].copy_from_slice(&ck.to_be_bytes());
        f.extend_from_slice(&ip);
        // TCP with one 4-byte option (offset = 6).
        let mut tcp = b[34..54].to_vec();
        tcp[12] = 6 << 4;
        f.extend_from_slice(&tcp);
        f.extend_from_slice(&[0x01, 0x01, 0x01, 0x00]);
        f.extend_from_slice(&b[54..]); // payload
        f
    }

    #[test]
    fn parses_packets_with_ip_and_tcp_options() {
        let mut p = Packet::from_frame(&frame_with_options()).unwrap();
        assert_eq!(p.five_tuple().unwrap().dst_port, 80);
        assert_eq!(p.payload().unwrap(), b"hello world");
        assert_eq!(p.ipv4().unwrap().header_len, 24);
        assert_eq!(p.tcp().unwrap().header_len, 24);
        // Field writes and checksum fixes preserve the options.
        p.set_field(HeaderField::DstPort, 9999u16).unwrap();
        p.fix_checksums().unwrap();
        assert!(p.verify_checksums().unwrap());
        assert_eq!(p.ipv4().unwrap().header_len, 24, "options intact");
        assert_eq!(p.payload().unwrap(), b"hello world");
        let bytes = p.as_bytes();
        assert_eq!(&bytes[34..38], &[0x01, 0x01, 0x01, 0x00], "IP options bytes intact");
    }

    #[test]
    fn encap_decap_preserves_options() {
        let mut p = Packet::from_frame(&frame_with_options()).unwrap();
        let before = p.as_bytes().to_vec();
        p.encap_ah(0x55, 1).unwrap();
        assert_eq!(p.ah_depth(), 1);
        assert_eq!(p.payload().unwrap(), b"hello world");
        p.decap_ah().unwrap();
        assert_eq!(p.as_bytes(), &before[..]);
    }

    #[test]
    fn vlan_tagged_frames_parse_and_modify() {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .vlan(42)
            .payload(b"tagged")
            .build();
        assert_eq!(p.vlan_id(), Some(42));
        assert_eq!(p.five_tuple().unwrap().dst_port, 80);
        assert_eq!(p.payload().unwrap(), b"tagged");
        assert!(p.verify_checksums().unwrap());
        // Field writes and checksum fixes keep the tag intact.
        p.set_field(HeaderField::DstPort, 8080u16).unwrap();
        p.fix_checksums().unwrap();
        assert!(p.verify_checksums().unwrap());
        assert_eq!(p.vlan_id(), Some(42));
        // Round-trips through from_frame.
        let re = Packet::from_frame(p.as_bytes()).unwrap();
        assert_eq!(re.vlan_id(), Some(42));
        assert_eq!(re.five_tuple().unwrap().dst_port, 8080);
    }

    #[test]
    fn vlan_frames_survive_encap_decap() {
        let mut p = PacketBuilder::tcp().vlan(7).payload(b"x").build();
        let before = p.as_bytes().to_vec();
        p.encap_ah(1, 0).unwrap();
        assert_eq!(p.vlan_id(), Some(7));
        assert_eq!(p.payload().unwrap(), b"x");
        p.decap_ah().unwrap();
        assert_eq!(p.as_bytes(), &before[..]);
    }

    #[test]
    fn untagged_frames_have_no_vlan() {
        let p = sample();
        assert_eq!(p.vlan_id(), None);
    }

    #[test]
    fn from_frame_rejects_garbage() {
        assert!(Packet::from_frame(&[0u8; 10]).is_err());
        // Valid eth, bogus IP version.
        let mut frame = vec![0u8; 64];
        frame[12] = 0x08;
        frame[14] = 0x65;
        assert!(Packet::from_frame(&frame).is_err());
    }

    #[test]
    fn from_frame_round_trip() {
        let p = sample();
        let p2 = Packet::from_frame(p.as_bytes()).unwrap();
        assert_eq!(p2.as_bytes(), p.as_bytes());
    }

    #[test]
    fn layout_resolves_offsets() {
        let p = sample();
        let lay = p.layout().unwrap();
        assert_eq!(lay.l3, ETHERNET_LEN);
        assert_eq!(lay.l4, ETHERNET_LEN + 20);
        assert_eq!(lay.protocol, Protocol::Tcp);
        // VLAN tag shifts L3; an AH layer shifts L4.
        let mut tagged = PacketBuilder::tcp().vlan(3).payload(b"x").build();
        assert_eq!(tagged.layout().unwrap().l3, ETHERNET_LEN + 4);
        tagged.encap_ah(1, 0).unwrap();
        let lay2 = tagged.layout().unwrap();
        assert_eq!(lay2.l4, ETHERNET_LEN + 4 + 20 + AH_LEN);
        assert_eq!(lay2.protocol, Protocol::Tcp);
    }

    #[test]
    fn encap_template_matches_encap_ah() {
        use crate::headers::AuthHeader;
        let mut a = sample();
        let mut b = sample();
        a.encap_ah(0xbeef, 0).unwrap();
        let mut template = [0u8; AH_LEN];
        AuthHeader::new(0xbeef, 0, 0).write(&mut template);
        b.encap_ah_template(&template).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn incremental_patches_match_full_recompute() {
        use crate::checksum::sum_bytes;
        for mut p in [
            sample(),
            PacketBuilder::udp()
                .src("10.0.0.1:53".parse().unwrap())
                .dst("10.0.0.2:5353".parse().unwrap())
                .payload(b"q")
                .build(),
        ] {
            let lay = p.layout().unwrap();
            // Rewrite DstIp (affects both checksums) + DstPort (L4 only),
            // summing the changed words by hand as a compiled program would.
            let old_ip = sum_bytes(0, &p.as_bytes()[lay.l3 + 16..lay.l3 + 20]);
            let old_port = sum_bytes(0, &p.as_bytes()[lay.l4 + 2..lay.l4 + 4]);
            p.set_field(HeaderField::DstIp, Ipv4Addr::new(203, 0, 113, 9)).unwrap();
            p.set_field(HeaderField::DstPort, 4420u16).unwrap();
            let new_ip = sum_bytes(0, &p.as_bytes()[lay.l3 + 16..lay.l3 + 20]);
            let new_port = sum_bytes(0, &p.as_bytes()[lay.l4 + 2..lay.l4 + 4]);
            let mut q = p.clone();
            p.patch_ipv4_checksum_incremental(old_ip, new_ip);
            p.patch_l4_checksum_incremental(old_ip + old_port, new_ip + new_port).unwrap();
            q.fix_checksums().unwrap();
            assert_eq!(p.as_bytes(), q.as_bytes());
            assert!(p.verify_checksums().unwrap());
        }
    }
}
