//! Packet substrate for the SpeedyBox NFV framework.
//!
//! This crate stands in for the DPDK/BESS/OpenNetVM packet layer used by the
//! SpeedyBox paper (ICDCS 2019). It provides:
//!
//! * Wire-format header types ([`headers::Ethernet`], [`headers::Ipv4`],
//!   [`headers::Tcp`], [`headers::Udp`], [`headers::AuthHeader`]) with
//!   zero-surprise parse/serialize round-trips,
//! * an owned, mutable [`Packet`] with mbuf-style headroom so VPN-style
//!   encapsulation ([`Packet::encap_ah`]) never reallocates on the hot path,
//! * flow identity: [`FiveTuple`] extraction and the paper's 20-bit
//!   [`Fid`] packet metadata (§VI-B of the paper),
//! * internet checksums ([`checksum`]),
//! * a DPDK-mempool-style [`pool::PacketPool`] with per-worker
//!   [`pool::Magazine`] caches so the steady-state data path never touches
//!   the allocator,
//! * a serde-backed [`trace`] format for recording and replaying workloads,
//!   and
//! * classic libpcap read/write ([`pcap`]) for interop with
//!   tcpdump/Wireshark.
//!
//! # Example
//!
//! ```
//! use speedybox_packet::{PacketBuilder, HeaderField};
//!
//! # fn main() -> Result<(), speedybox_packet::PacketError> {
//! let mut pkt = PacketBuilder::tcp()
//!     .src("10.0.0.1:1234".parse().unwrap())
//!     .dst("192.168.1.9:80".parse().unwrap())
//!     .payload(b"GET / HTTP/1.1")
//!     .build();
//! let ft = pkt.five_tuple()?;
//! assert_eq!(ft.dst_port, 80);
//! pkt.set_field(HeaderField::DstPort, 8080u16)?;
//! assert_eq!(pkt.five_tuple()?.dst_port, 8080);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod checksum;
pub mod field;
pub mod five_tuple;
pub mod headers;
pub mod packet;
pub mod pcap;
pub mod pool;
pub mod trace;

pub use builder::PacketBuilder;
pub use field::{FieldValue, HeaderField};
pub use five_tuple::{Fid, FiveTuple, Protocol, FID_BITS, FID_MASK};
pub use packet::{HeaderLayout, Packet, PacketError, TcpFlags};
pub use pool::{Magazine, PacketPool, PoolStats, DEFAULT_POOL_BUFFERS, MAGAZINE_SIZE};

/// Result alias used throughout this crate.
pub type Result<T, E = PacketError> = core::result::Result<T, E>;
