//! Classic libpcap file format (`.pcap`) support.
//!
//! Lets traces captured or synthesized here be opened in
//! tcpdump/Wireshark and vice versa. Implements the original 24-byte
//! global header + 16-byte per-record format (the format tcpdump calls
//! "pcap classic", magic `0xA1B2C3D4`, microsecond timestamps,
//! LINKTYPE_ETHERNET), reading both byte orders and the nanosecond-magic
//! variant.

use std::io::{Read, Write};

use crate::trace::{Trace, TraceRecord};

/// Microsecond-timestamp magic, native order on write.
pub const MAGIC_US: u32 = 0xA1B2_C3D4;
/// Nanosecond-timestamp magic (accepted on read).
pub const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Snap length we advertise (no truncation below this).
pub const SNAPLEN: u32 = 65535;

/// Errors from reading a pcap stream.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with a known pcap magic.
    BadMagic(u32),
    /// The link type is not Ethernet.
    UnsupportedLinkType(u32),
    /// A record header claims a length beyond the snap length.
    OversizedRecord(u32),
    /// The stream ended in the middle of a record.
    TruncatedRecord,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap stream (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(t) => write!(f, "unsupported link type {t}"),
            PcapError::OversizedRecord(n) => write!(f, "record length {n} exceeds snaplen"),
            PcapError::TruncatedRecord => f.write_str("truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Writes a trace as a classic pcap file (microsecond timestamps,
/// Ethernet link type, little-endian — the common case on x86 captures).
///
/// # Errors
/// Propagates I/O errors.
#[allow(clippy::cast_possible_truncation)] // pcap format: u32 seconds + snap-capped frames
pub fn write_pcap<W: Write>(trace: &Trace, mut writer: W) -> Result<(), PcapError> {
    writer.write_all(&MAGIC_US.to_le_bytes())?;
    writer.write_all(&2u16.to_le_bytes())?; // version major
    writer.write_all(&4u16.to_le_bytes())?; // version minor
    writer.write_all(&0i32.to_le_bytes())?; // thiszone
    writer.write_all(&0u32.to_le_bytes())?; // sigfigs
    writer.write_all(&SNAPLEN.to_le_bytes())?;
    writer.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for rec in trace.iter() {
        let secs = (rec.timestamp_ns / 1_000_000_000) as u32;
        let micros = ((rec.timestamp_ns % 1_000_000_000) / 1_000) as u32;
        let len = rec.frame.len() as u32;
        writer.write_all(&secs.to_le_bytes())?;
        writer.write_all(&micros.to_le_bytes())?;
        writer.write_all(&len.to_le_bytes())?; // incl_len
        writer.write_all(&len.to_le_bytes())?; // orig_len
        writer.write_all(&rec.frame)?;
    }
    writer.flush()?;
    Ok(())
}

/// Byte-order-aware integer reads.
struct Endian {
    big: bool,
}

impl Endian {
    fn u32(&self, b: [u8; 4]) -> u32 {
        if self.big {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<bool, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 { Ok(false) } else { Err(PcapError::TruncatedRecord) };
        }
        filled += n;
    }
    Ok(true)
}

/// Reads a classic pcap stream into a [`Trace`]. Accepts both byte orders
/// and both microsecond and nanosecond timestamp magics.
///
/// # Errors
/// Returns [`PcapError`] for malformed streams; frames that are not
/// parseable packets are still loaded (the trace stores raw frames).
pub fn read_pcap<R: Read>(mut reader: R) -> Result<Trace, PcapError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    let magic_le = u32::from_le_bytes(magic);
    let magic_be = u32::from_be_bytes(magic);
    let (endian, nanos) = match (magic_le, magic_be) {
        (MAGIC_US, _) => (Endian { big: false }, false),
        (MAGIC_NS, _) => (Endian { big: false }, true),
        (_, MAGIC_US) => (Endian { big: true }, false),
        (_, MAGIC_NS) => (Endian { big: true }, true),
        _ => return Err(PcapError::BadMagic(magic_le)),
    };
    let mut rest = [0u8; 20];
    reader.read_exact(&mut rest)?;
    let linktype = endian.u32(rest[16..20].try_into().expect("4 bytes"));
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    let mut trace = Trace::new();
    loop {
        let mut hdr = [0u8; 16];
        if !read_exact_or_eof(&mut reader, &mut hdr)? {
            break;
        }
        let secs = endian.u32(hdr[0..4].try_into().expect("4 bytes"));
        let frac = endian.u32(hdr[4..8].try_into().expect("4 bytes"));
        let incl = endian.u32(hdr[8..12].try_into().expect("4 bytes"));
        if incl > SNAPLEN {
            return Err(PcapError::OversizedRecord(incl));
        }
        let mut frame = vec![0u8; incl as usize];
        if !read_exact_or_eof(&mut reader, &mut frame)? && incl > 0 {
            return Err(PcapError::TruncatedRecord);
        }
        let frac_ns = if nanos { u64::from(frac) } else { u64::from(frac) * 1_000 };
        let timestamp_ns = u64::from(secs) * 1_000_000_000 + frac_ns;
        trace.push(TraceRecord { timestamp_ns, frame });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // test data built from small literals
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..4u32 {
            let p = PacketBuilder::tcp()
                .src(format!("10.0.0.1:{}", 1000 + i).parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .payload(format!("payload-{i}").as_bytes())
                .build();
            // Microsecond-aligned timestamps (the classic format's
            // precision) so the round-trip is exact.
            t.push(TraceRecord::capture(1_500_000_000 * u64::from(i) + 123_000, &p));
        }
        t
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let t2 = read_pcap(&buf[..]).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn global_header_layout() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &[0xD4, 0xC3, 0xB2, 0xA1], "LE magic");
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 2);
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), 4);
        assert_eq!(u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]), 1, "Ethernet");
    }

    #[test]
    fn timestamps_preserved_to_microseconds() {
        let mut t = Trace::new();
        let p = PacketBuilder::tcp().build();
        t.push(TraceRecord { timestamp_ns: 3_000_000_789, frame: p.as_bytes().to_vec() });
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let t2 = read_pcap(&buf[..]).unwrap();
        // Sub-microsecond precision is lost in the classic format.
        assert_eq!(t2.iter().next().unwrap().timestamp_ns, 3_000_000_000);
    }

    #[test]
    fn reads_big_endian_captures() {
        // Hand-build a BE header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&SNAPLEN.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        let frame = [0xABu8; 10];
        buf.extend_from_slice(&7u32.to_be_bytes()); // secs
        buf.extend_from_slice(&5u32.to_be_bytes()); // usecs
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&frame);
        let t = read_pcap(&buf[..]).unwrap();
        assert_eq!(t.len(), 1);
        let rec = t.iter().next().unwrap();
        assert_eq!(rec.timestamp_ns, 7_000_005_000);
        assert_eq!(rec.frame, frame);
    }

    #[test]
    fn nanosecond_magic_accepted() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NS.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // secs
        buf.extend_from_slice(&42u32.to_le_bytes()); // nanos
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[1u8, 2]);
        let t = read_pcap(&buf[..]).unwrap();
        assert_eq!(t.iter().next().unwrap().timestamp_ns, 1_000_000_042);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_pcap(&[0u8; 24][..]), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn wrong_linktype_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_US.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        buf.extend_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::UnsupportedLinkType(101))));
    }

    #[test]
    fn truncated_record_rejected() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::TruncatedRecord)));
    }

    #[test]
    fn empty_capture_round_trips() {
        let mut buf = Vec::new();
        write_pcap(&Trace::new(), &mut buf).unwrap();
        let t = read_pcap(&buf[..]).unwrap();
        assert!(t.is_empty());
    }
}
