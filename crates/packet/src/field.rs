//! Named packet-header fields and values.
//!
//! SpeedyBox's `modify` header action names the field it rewrites
//! (`modify(DIP)`, `modify(DPort)`, ...). [`HeaderField`] is that name and
//! [`FieldValue`] the value written. The consolidation algorithm in
//! `speedybox-mat` works over `(HeaderField, FieldValue)` pairs.

use std::fmt;
use std::net::Ipv4Addr;

/// A modifiable packet-header field.
///
/// The "primary" fields (addresses and ports) carry routing semantics and
/// participate in consolidation ordering; the "trailing" fields (TTL, ToS,
/// checksums are recomputed rather than set) are fixed up after consolidation
/// as described in paper §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeaderField {
    /// Ethernet source MAC address.
    SrcMac,
    /// Ethernet destination MAC address.
    DstMac,
    /// IPv4 source address.
    SrcIp,
    /// IPv4 destination address.
    DstIp,
    /// TCP/UDP source port.
    SrcPort,
    /// TCP/UDP destination port.
    DstPort,
    /// IPv4 time-to-live.
    Ttl,
    /// IPv4 type-of-service / DSCP byte.
    Tos,
}

impl HeaderField {
    /// All fields, in canonical order.
    pub const ALL: [HeaderField; 8] = [
        HeaderField::SrcMac,
        HeaderField::DstMac,
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::Ttl,
        HeaderField::Tos,
    ];

    /// Width of this field on the wire, in bytes.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            HeaderField::SrcMac | HeaderField::DstMac => 6,
            HeaderField::SrcIp | HeaderField::DstIp => 4,
            HeaderField::SrcPort | HeaderField::DstPort => 2,
            HeaderField::Ttl | HeaderField::Tos => 1,
        }
    }

    /// Whether this field is part of the flow 5-tuple.
    #[must_use]
    pub fn in_five_tuple(self) -> bool {
        matches!(
            self,
            HeaderField::SrcIp | HeaderField::DstIp | HeaderField::SrcPort | HeaderField::DstPort
        )
    }

    /// Whether this is a "trailing" field that SpeedyBox fixes up at the end
    /// of consolidation instead of merging (paper §V-B: checksum, TTL, MAC,
    /// length "are unlikely to be part of the main processing logic").
    #[must_use]
    pub fn is_trailing(self) -> bool {
        matches!(
            self,
            HeaderField::Ttl | HeaderField::Tos | HeaderField::SrcMac | HeaderField::DstMac
        )
    }
}

impl fmt::Display for HeaderField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeaderField::SrcMac => "SMac",
            HeaderField::DstMac => "DMac",
            HeaderField::SrcIp => "SIP",
            HeaderField::DstIp => "DIP",
            HeaderField::SrcPort => "SPort",
            HeaderField::DstPort => "DPort",
            HeaderField::Ttl => "TTL",
            HeaderField::Tos => "ToS",
        };
        f.write_str(s)
    }
}

/// A value written into a [`HeaderField`].
///
/// Stored as a u64 wide enough for a MAC address; conversions validate width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldValue(u64);

impl FieldValue {
    /// Wraps a raw value.
    #[must_use]
    pub fn new(raw: u64) -> Self {
        FieldValue(raw)
    }

    /// The raw value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Interprets the value as an IPv4 address.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // narrowing IS the interpretation
    pub fn as_ipv4(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 as u32)
    }

    /// Interprets the value as a port number.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // narrowing IS the interpretation
    pub fn as_port(self) -> u16 {
        self.0 as u16
    }

    /// Interprets the value as a single byte (TTL/ToS).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // narrowing IS the interpretation
    pub fn as_byte(self) -> u8 {
        self.0 as u8
    }

    /// Interprets the value as a MAC address.
    #[must_use]
    pub fn as_mac(self) -> [u8; 6] {
        let b = self.0.to_be_bytes();
        [b[2], b[3], b[4], b[5], b[6], b[7]]
    }
}

impl From<Ipv4Addr> for FieldValue {
    fn from(ip: Ipv4Addr) -> Self {
        FieldValue(u64::from(u32::from(ip)))
    }
}

impl From<u16> for FieldValue {
    fn from(port: u16) -> Self {
        FieldValue(u64::from(port))
    }
}

impl From<u8> for FieldValue {
    fn from(byte: u8) -> Self {
        FieldValue(u64::from(byte))
    }
}

impl From<[u8; 6]> for FieldValue {
    fn from(mac: [u8; 6]) -> Self {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&mac);
        FieldValue(u64::from_be_bytes(b))
    }
}

impl From<u64> for FieldValue {
    fn from(raw: u64) -> Self {
        FieldValue(raw)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_round_trip() {
        let ip = Ipv4Addr::new(192, 168, 1, 77);
        assert_eq!(FieldValue::from(ip).as_ipv4(), ip);
    }

    #[test]
    fn port_round_trip() {
        assert_eq!(FieldValue::from(8080u16).as_port(), 8080);
    }

    #[test]
    fn mac_round_trip() {
        let mac = [0xde, 0xad, 0xbe, 0xef, 0x00, 0x01];
        assert_eq!(FieldValue::from(mac).as_mac(), mac);
    }

    #[test]
    fn byte_round_trip() {
        assert_eq!(FieldValue::from(64u8).as_byte(), 64);
    }

    #[test]
    fn widths_match_wire_format() {
        assert_eq!(HeaderField::SrcMac.width(), 6);
        assert_eq!(HeaderField::SrcIp.width(), 4);
        assert_eq!(HeaderField::DstPort.width(), 2);
        assert_eq!(HeaderField::Ttl.width(), 1);
    }

    #[test]
    fn five_tuple_membership() {
        assert!(HeaderField::DstIp.in_five_tuple());
        assert!(HeaderField::SrcPort.in_five_tuple());
        assert!(!HeaderField::Ttl.in_five_tuple());
        assert!(!HeaderField::DstMac.in_five_tuple());
    }

    #[test]
    fn trailing_fields() {
        assert!(HeaderField::Ttl.is_trailing());
        assert!(HeaderField::DstMac.is_trailing());
        assert!(!HeaderField::DstIp.is_trailing());
    }

    #[test]
    fn all_covers_every_variant() {
        // Display of every variant is distinct (sanity for table output).
        use std::collections::HashSet;
        let names: HashSet<String> = HeaderField::ALL.iter().map(|f| f.to_string()).collect();
        assert_eq!(names.len(), HeaderField::ALL.len());
    }
}
