//! Recording and replaying packet traces.
//!
//! The paper's evaluation replays a datacenter trace (Benson et al.) through
//! the chains. Our workloads are synthesized by `speedybox-traffic`, but the
//! trace format here lets any workload be captured once and replayed
//! deterministically — including across the with/without-SpeedyBox
//! equivalence runs of §VII-C.

use std::io::{BufRead, Write};

use crate::packet::Packet;
use crate::Result;

/// One recorded packet: arrival time (ns since trace start) plus frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the start of the trace.
    pub timestamp_ns: u64,
    /// Raw frame bytes (Ethernet onward).
    pub frame: Vec<u8>,
}

impl TraceRecord {
    /// Captures a packet at the given timestamp.
    #[must_use]
    pub fn capture(timestamp_ns: u64, packet: &Packet) -> Self {
        Self { timestamp_ns, frame: packet.as_bytes().to_vec() }
    }

    /// Reconstructs the packet.
    ///
    /// # Errors
    /// Returns an error if the recorded frame no longer parses.
    pub fn to_packet(&self) -> Result<Packet> {
        Packet::from_frame(&self.frame)
    }
}

/// An in-memory packet trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Reconstructs all packets in order.
    ///
    /// # Errors
    /// Returns the first parse failure encountered.
    pub fn packets(&self) -> Result<Vec<Packet>> {
        self.records.iter().map(TraceRecord::to_packet).collect()
    }

    /// Serializes the trace to a simple line format:
    /// `<timestamp_ns> <hex-frame>\n`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_lines<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for rec in &self.records {
            let hex: String = rec.frame.iter().map(|b| format!("{b:02x}")).collect();
            writeln!(writer, "{} {}", rec.timestamp_ns, hex)?;
        }
        writer.flush()
    }

    /// Parses a trace from the line format written by [`Trace::write_lines`].
    ///
    /// # Errors
    /// Returns `None`-mapped I/O or format errors as `std::io::Error`.
    pub fn read_lines<R: BufRead>(reader: R) -> std::io::Result<Self> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
        let mut trace = Trace::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (ts, hex) = line.split_once(' ').ok_or_else(|| bad("missing separator"))?;
            let timestamp_ns: u64 = ts.parse().map_err(|_| bad("bad timestamp"))?;
            if hex.len() % 2 != 0 {
                return Err(bad("odd hex length"));
            }
            let frame = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| bad("bad hex")))
                .collect::<std::io::Result<Vec<u8>>>()?;
            trace.push(TraceRecord { timestamp_ns, frame });
        }
        Ok(trace)
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Self { records: iter.into_iter().collect() }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..5u32 {
            let p = PacketBuilder::tcp()
                .src(format!("10.0.0.1:{}", 1000 + i).parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .payload(format!("pkt{i}").as_bytes())
                .build();
            t.push(TraceRecord::capture(u64::from(i) * 1000, &p));
        }
        t
    }

    #[test]
    fn capture_and_reconstruct() {
        let t = sample_trace();
        let pkts = t.packets().unwrap();
        assert_eq!(pkts.len(), 5);
        assert_eq!(pkts[3].payload().unwrap(), b"pkt3");
    }

    #[test]
    fn line_format_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_lines(&mut buf).unwrap();
        let t2 = Trace::read_lines(&buf[..]).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn read_lines_rejects_garbage() {
        assert!(Trace::read_lines(&b"notanumber deadbeef\n"[..]).is_err());
        assert!(Trace::read_lines(&b"123 xyz\n"[..]).is_err());
        assert!(Trace::read_lines(&b"123 abc\n"[..]).is_err()); // odd hex
        assert!(Trace::read_lines(&b"123\n"[..]).is_err()); // no separator
    }

    #[test]
    fn empty_lines_are_skipped() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_lines(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let t2 = Trace::read_lines(&buf[..]).unwrap();
        assert_eq!(t2.len(), 5);
    }

    #[test]
    fn collect_from_iterator() {
        let t = sample_trace();
        let t2: Trace = t.clone().into_iter().collect();
        assert_eq!(t, t2);
    }
}
