//! A recycling packet pool, analogous to a DPDK mempool.
//!
//! The simulators allocate and free millions of packets; recycling the
//! backing buffers keeps allocation cost out of the measured path, the same
//! role the DPDK mempool plays for the paper's prototype.

use bytes::BytesMut;

use crate::packet::HEADROOM;

/// A pool of reusable packet buffers.
///
/// Not thread-safe by design: each simulator worker owns one pool, as each
/// DPDK lcore owns a mempool cache.
#[derive(Debug)]
pub struct PacketPool {
    free: Vec<BytesMut>,
    buf_capacity: usize,
    allocated: u64,
    recycled: u64,
}

impl PacketPool {
    /// Creates a pool that hands out buffers with room for frames up to
    /// `max_frame` bytes plus [`HEADROOM`].
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        Self { free: Vec::new(), buf_capacity: HEADROOM + max_frame, allocated: 0, recycled: 0 }
    }

    /// Creates a pool pre-populated with `count` buffers.
    #[must_use]
    pub fn with_capacity(max_frame: usize, count: usize) -> Self {
        let mut pool = Self::new(max_frame);
        for _ in 0..count {
            let buf = BytesMut::with_capacity(pool.buf_capacity);
            pool.free.push(buf);
        }
        pool
    }

    /// Takes a cleared buffer from the pool, allocating if empty.
    pub fn take(&mut self) -> BytesMut {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.recycled += 1;
                buf
            }
            None => {
                self.allocated += 1;
                BytesMut::with_capacity(self.buf_capacity)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: BytesMut) {
        if buf.capacity() >= self.buf_capacity {
            self.free.push(buf);
        }
        // Undersized buffers (e.g. split-off remnants) are dropped.
    }

    /// Number of buffers currently idle in the pool.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Count of fresh allocations performed (pool misses).
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocated
    }

    /// Count of successful buffer reuses (pool hits).
    #[must_use]
    pub fn recycles(&self) -> u64 {
        self.recycled
    }
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new(2048)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles() {
        let mut pool = PacketPool::new(512);
        let b1 = pool.take();
        assert_eq!(pool.allocations(), 1);
        pool.give(b1);
        assert_eq!(pool.idle(), 1);
        let _b2 = pool.take();
        assert_eq!(pool.recycles(), 1);
        assert_eq!(pool.allocations(), 1);
    }

    #[test]
    fn prepopulated_pool_has_idle_buffers() {
        let pool = PacketPool::with_capacity(512, 8);
        assert_eq!(pool.idle(), 8);
    }

    #[test]
    fn undersized_buffers_are_dropped() {
        let mut pool = PacketPool::new(4096);
        pool.give(BytesMut::with_capacity(16));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn taken_buffers_are_empty() {
        let mut pool = PacketPool::new(512);
        let mut b = pool.take();
        b.extend_from_slice(&[1, 2, 3]);
        pool.give(b);
        let b2 = pool.take();
        assert!(b2.is_empty());
    }
}
