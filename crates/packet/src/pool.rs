//! The pooled packet-buffer substrate, analogous to a DPDK mempool.
//!
//! The paper's prototype rides DPDK mempools so the measured path never
//! touches the allocator. This module reproduces that discipline in safe
//! Rust: a [`PacketPool`] owns a depot of fixed-size buffers (frame room
//! plus [`HEADROOM`], the mbuf layout [`Packet`] already uses) behind one
//! mutex, and per-worker [`Magazine`] caches front it DPDK
//! mempool-cache style — buffers move between a magazine and the depot in
//! batches, so the depot lock is touched once per half-magazine of
//! packets, not once per packet.
//!
//! Exhaustion degrades gracefully: a dry pool falls back to plain heap
//! allocation (counted as a miss) and an over-full pool drops returned
//! buffers on the floor (plain heap free). Neither path blocks or panics,
//! so a SYN storm stays bounded and observable instead of fatal. The
//! counters behind [`PacketPool::stats`] are surfaced through
//! `speedybox-telemetry` by the platform runtimes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};

use bytes::BytesMut;

use crate::packet::{Packet, PacketError, HEADROOM};

/// Default number of buffers a pool retains (the depot's slab bound).
pub const DEFAULT_POOL_BUFFERS: usize = 4096;

/// Default per-worker magazine size, mirroring DPDK's per-lcore mempool
/// cache. Refills and flushes move half a magazine at a time.
pub const MAGAZINE_SIZE: usize = 32;

/// Point-in-time pool counters (all monotonic except `depth`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the pool (magazine cache or depot).
    pub hits: u64,
    /// Buffer requests that fell back to a fresh heap allocation because
    /// the pool was exhausted.
    pub misses: u64,
    /// Buffers accepted back for reuse (returns beyond the retention
    /// capacity are dropped and not counted).
    pub recycled: u64,
    /// Magazine batch refills from the depot.
    pub refills: u64,
    /// Magazine batch flushes back to the depot.
    pub flushes: u64,
    /// Buffers currently idle in the depot (a gauge, not a counter).
    pub depth: u64,
}

/// A shared pool of reusable packet buffers.
///
/// Thread-safe: clone the [`Arc`] into every worker and front it with one
/// [`Magazine`] per worker so the depot mutex stays off the per-packet
/// path.
#[derive(Debug)]
pub struct PacketPool {
    depot: Mutex<Vec<BytesMut>>,
    buf_capacity: usize,
    /// Retention bound: the depot never holds more than this many idle
    /// buffers. Adjustable at runtime (the sim's `pool=N` pressure fault).
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    refills: AtomicU64,
    flushes: AtomicU64,
}

impl PacketPool {
    /// Creates an empty pool that hands out buffers with room for frames
    /// up to `max_frame` bytes plus [`HEADROOM`], retaining at most
    /// [`DEFAULT_POOL_BUFFERS`] idle buffers. The depot fills lazily as
    /// finished packets are recycled into it.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        Self::bounded(max_frame, DEFAULT_POOL_BUFFERS)
    }

    /// Creates an empty pool with an explicit retention bound.
    #[must_use]
    pub fn bounded(max_frame: usize, capacity: usize) -> Self {
        Self {
            depot: Mutex::new(Vec::with_capacity(capacity)),
            buf_capacity: HEADROOM + max_frame,
            capacity: AtomicUsize::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// Creates a pool pre-populated with `count` buffers (and a retention
    /// bound of `count`).
    #[must_use]
    pub fn with_capacity(max_frame: usize, count: usize) -> Self {
        let pool = Self::bounded(max_frame, count);
        {
            let mut depot = pool.depot();
            for _ in 0..count {
                depot.push(BytesMut::with_capacity(pool.buf_capacity));
            }
        }
        pool
    }

    /// Poison-proof depot access: a panicking holder cannot corrupt a
    /// `Vec<BytesMut>`, so the data is always valid.
    fn depot(&self) -> MutexGuard<'_, Vec<BytesMut>> {
        self.depot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The fixed per-buffer capacity (frame room plus [`HEADROOM`]).
    #[must_use]
    pub fn buf_capacity(&self) -> usize {
        self.buf_capacity
    }

    /// The current retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Relaxed)
    }

    /// Re-bounds the pool at runtime (the sim's `pool=N` pressure knob).
    /// Shrinking below the current depth drops the excess idle buffers;
    /// processing results never change — only buffer provenance does.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Relaxed);
        let mut depot = self.depot();
        if depot.len() > capacity {
            depot.truncate(capacity);
        }
    }

    /// Takes a cleared buffer, falling back to a heap allocation (counted
    /// as a miss) when the depot is dry.
    pub fn take(&self) -> BytesMut {
        let popped = self.depot().pop();
        match popped {
            Some(mut buf) => {
                buf.clear();
                self.hits.fetch_add(1, Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                BytesMut::with_capacity(self.buf_capacity)
            }
        }
    }

    /// Returns a buffer for reuse. Undersized buffers and returns beyond
    /// the retention bound are dropped (a plain heap free).
    pub fn give(&self, buf: BytesMut) {
        if buf.capacity() < self.buf_capacity {
            return;
        }
        let mut depot = self.depot();
        if depot.len() < self.capacity.load(Relaxed) {
            depot.push(buf);
            self.recycled.fetch_add(1, Relaxed);
        }
    }

    /// Takes `n` cleared buffers with one depot-lock acquisition,
    /// appending them to `out`. Shortfall is made up from the heap
    /// (counted as misses).
    pub fn take_batch(&self, n: usize, out: &mut Vec<BytesMut>) {
        out.reserve(n);
        let mut served = 0usize;
        {
            let mut depot = self.depot();
            while served < n {
                let Some(mut buf) = depot.pop() else { break };
                buf.clear();
                out.push(buf);
                served += 1;
            }
        }
        self.hits.fetch_add(served as u64, Relaxed);
        let missed = n - served;
        if missed > 0 {
            self.misses.fetch_add(missed as u64, Relaxed);
            for _ in 0..missed {
                out.push(BytesMut::with_capacity(self.buf_capacity));
            }
        }
    }

    /// Returns a batch of buffers with one depot-lock acquisition.
    pub fn give_batch(&self, bufs: impl IntoIterator<Item = BytesMut>) {
        let cap = self.capacity.load(Relaxed);
        let mut accepted = 0u64;
        {
            let mut depot = self.depot();
            for buf in bufs {
                if buf.capacity() < self.buf_capacity || depot.len() >= cap {
                    continue;
                }
                depot.push(buf);
                accepted += 1;
            }
        }
        if accepted > 0 {
            self.recycled.fetch_add(accepted, Relaxed);
        }
    }

    /// Recycles a batch of finished packets' buffers with one depot-lock
    /// acquisition.
    pub fn free_batch(&self, packets: impl IntoIterator<Item = Packet>) {
        self.give_batch(packets.into_iter().map(Packet::into_buf));
    }

    /// Builds a validated packet from `frame` in a pooled buffer.
    ///
    /// # Errors
    /// Returns the parse error for malformed frames; the buffer goes back
    /// to the pool.
    pub fn alloc_frame(&self, frame: &[u8]) -> Result<Packet, PacketError> {
        let pkt = Packet::assemble(self.take(), frame);
        match pkt.validate() {
            Ok(()) => Ok(pkt),
            Err(e) => {
                self.give(pkt.into_buf());
                Err(e)
            }
        }
    }

    /// Builds validated packets for a batch of frames with one depot
    /// visit. Each slot is `Some(packet)` or `None` for a malformed frame
    /// (whose buffer goes straight back to the pool).
    pub fn alloc_frames<'a, I>(&self, frames: I, out: &mut Vec<Option<Packet>>)
    where
        I: IntoIterator<Item = &'a [u8]>,
        I::IntoIter: ExactSizeIterator,
    {
        let frames = frames.into_iter();
        let mut bufs: Vec<BytesMut> = Vec::with_capacity(frames.len());
        self.take_batch(frames.len(), &mut bufs);
        let mut rejected: Vec<BytesMut> = Vec::new();
        for (frame, buf) in frames.zip(bufs) {
            let pkt = Packet::assemble(buf, frame);
            match pkt.validate() {
                Ok(()) => out.push(Some(pkt)),
                Err(_) => {
                    rejected.push(pkt.into_buf());
                    out.push(None);
                }
            }
        }
        if !rejected.is_empty() {
            self.give_batch(rejected);
        }
    }

    /// A pooled deep copy of `src` (frame bytes and flow id preserved).
    #[must_use]
    pub fn copy_packet(&self, src: &Packet) -> Packet {
        let mut pkt = Packet::assemble(self.take(), src.as_bytes());
        if let Some(fid) = src.fid() {
            pkt.set_fid(fid);
        }
        pkt
    }

    /// Pooled deep copies of `src` with one depot-lock acquisition,
    /// appended to `out` — the explicit clone-for-rerun the benches use
    /// outside their measured regions (and, pool permitting, without any
    /// allocator traffic inside them).
    pub fn copy_packets_into(&self, src: &[Packet], out: &mut Vec<Packet>) {
        let mut bufs: Vec<BytesMut> = Vec::with_capacity(src.len());
        self.take_batch(src.len(), &mut bufs);
        for (p, buf) in src.iter().zip(bufs) {
            let mut pkt = Packet::assemble(buf, p.as_bytes());
            if let Some(fid) = p.fid() {
                pkt.set_fid(fid);
            }
            out.push(pkt);
        }
    }

    /// [`PacketPool::copy_packets_into`], collecting into a fresh vector.
    #[must_use]
    pub fn copy_packets(&self, src: &[Packet]) -> Vec<Packet> {
        let mut out = Vec::with_capacity(src.len());
        self.copy_packets_into(src, &mut out);
        out
    }

    /// Number of buffers currently idle in the depot.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.depot().len()
    }

    /// Snapshot of the pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            recycled: self.recycled.load(Relaxed),
            refills: self.refills.load(Relaxed),
            flushes: self.flushes.load(Relaxed),
            depth: self.idle() as u64,
        }
    }
}

impl Default for PacketPool {
    fn default() -> Self {
        Self::new(2048)
    }
}

/// A per-worker buffer cache fronting a shared [`PacketPool`] — DPDK's
/// per-lcore mempool cache.
///
/// Deliberately not `Sync`: each worker owns one magazine (`&mut`
/// methods) and only batch refills/flushes touch the shared depot. A
/// dropped magazine flushes its buffers back to the depot.
#[derive(Debug)]
pub struct Magazine {
    pool: Arc<PacketPool>,
    cache: Vec<BytesMut>,
    size: usize,
}

impl Magazine {
    /// A magazine of [`MAGAZINE_SIZE`] buffers over `pool`.
    #[must_use]
    pub fn new(pool: Arc<PacketPool>) -> Self {
        Self::with_size(pool, MAGAZINE_SIZE)
    }

    /// A magazine with an explicit cache size (minimum 2 so half-batches
    /// are non-empty).
    #[must_use]
    pub fn with_size(pool: Arc<PacketPool>, size: usize) -> Self {
        let size = size.max(2);
        Self { cache: Vec::with_capacity(size), pool, size }
    }

    /// The shared pool this magazine fronts.
    #[must_use]
    pub fn pool(&self) -> &Arc<PacketPool> {
        &self.pool
    }

    /// Takes a cleared buffer: from the cache, else a half-magazine batch
    /// refill from the depot, else a heap fallback (counted as a miss by
    /// the pool).
    pub fn take(&mut self) -> BytesMut {
        if let Some(mut buf) = self.cache.pop() {
            buf.clear();
            self.pool.hits.fetch_add(1, Relaxed);
            return buf;
        }
        // Batch refill: one depot lock buys up to half a magazine.
        let want = self.size / 2;
        {
            let mut depot = self.pool.depot();
            while self.cache.len() < want {
                let Some(buf) = depot.pop() else { break };
                self.cache.push(buf);
            }
        }
        if self.cache.is_empty() {
            self.pool.misses.fetch_add(1, Relaxed);
            return BytesMut::with_capacity(self.pool.buf_capacity);
        }
        self.pool.refills.fetch_add(1, Relaxed);
        self.pool.hits.fetch_add(1, Relaxed);
        let mut buf = self.cache.pop().expect("refilled cache is non-empty");
        buf.clear();
        buf
    }

    /// Returns a buffer for reuse. A full magazine first flushes half of
    /// itself to the depot in one batch; undersized buffers are dropped.
    pub fn give(&mut self, buf: BytesMut) {
        if buf.capacity() < self.pool.buf_capacity {
            return;
        }
        if self.cache.len() >= self.size {
            self.flush_half();
        }
        self.cache.push(buf);
        self.pool.recycled.fetch_add(1, Relaxed);
    }

    /// Recycles a finished packet's buffer.
    pub fn give_packet(&mut self, packet: Packet) {
        self.give(packet.into_buf());
    }

    /// A pooled deep copy of `src` through this magazine's cache (frame
    /// bytes and flow id preserved).
    #[must_use]
    pub fn copy_packet(&mut self, src: &Packet) -> Packet {
        let mut pkt = Packet::assemble(self.take(), src.as_bytes());
        if let Some(fid) = src.fid() {
            pkt.set_fid(fid);
        }
        pkt
    }

    /// Flushes half the cache to the depot with one lock acquisition.
    fn flush_half(&mut self) {
        let keep = self.size / 2;
        let cap = self.pool.capacity.load(Relaxed);
        {
            let mut depot = self.pool.depot();
            for buf in self.cache.drain(keep..) {
                if depot.len() < cap {
                    depot.push(buf);
                }
                // Beyond the retention bound: dropped (plain heap free).
            }
        }
        self.pool.flushes.fetch_add(1, Relaxed);
    }

    /// Returns every cached buffer to the depot.
    pub fn flush(&mut self) {
        if self.cache.is_empty() {
            return;
        }
        let cap = self.pool.capacity.load(Relaxed);
        {
            let mut depot = self.pool.depot();
            for buf in self.cache.drain(..) {
                if depot.len() < cap {
                    depot.push(buf);
                }
            }
        }
        self.pool.flushes.fetch_add(1, Relaxed);
    }

    /// Buffers currently cached in this magazine.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.cache.len()
    }
}

impl Drop for Magazine {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles() {
        let pool = PacketPool::new(512);
        let b1 = pool.take();
        assert_eq!(pool.stats().misses, 1);
        pool.give(b1);
        assert_eq!(pool.idle(), 1);
        let _b2 = pool.take();
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn prepopulated_pool_has_idle_buffers() {
        let pool = PacketPool::with_capacity(512, 8);
        assert_eq!(pool.idle(), 8);
        assert_eq!(pool.stats().depth, 8);
    }

    #[test]
    fn undersized_buffers_are_dropped() {
        let pool = PacketPool::new(4096);
        pool.give(BytesMut::with_capacity(16));
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn taken_buffers_are_empty() {
        let pool = PacketPool::new(512);
        let mut b = pool.take();
        b.extend_from_slice(&[1, 2, 3]);
        pool.give(b);
        let b2 = pool.take();
        assert!(b2.is_empty());
    }

    #[test]
    fn retention_bound_drops_excess_returns() {
        let pool = PacketPool::bounded(512, 2);
        for _ in 0..5 {
            pool.give(BytesMut::with_capacity(pool.buf_capacity()));
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().recycled, 2);
    }

    #[test]
    fn set_capacity_shrinks_live() {
        let pool = PacketPool::with_capacity(512, 8);
        pool.set_capacity(3);
        assert_eq!(pool.idle(), 3);
        // Exhaustion after the shrink falls back to the heap, never panics.
        let taken: Vec<_> = (0..6).map(|_| pool.take()).collect();
        assert_eq!(pool.stats().misses, 3);
        drop(taken);
    }

    #[test]
    fn batch_take_mixes_pool_and_heap() {
        let pool = PacketPool::with_capacity(256, 4);
        let mut bufs = Vec::new();
        pool.take_batch(6, &mut bufs);
        assert_eq!(bufs.len(), 6);
        let s = pool.stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 2);
        pool.give_batch(bufs);
        assert_eq!(pool.idle(), 4); // bound is 4; the rest were dropped
    }

    #[test]
    fn magazine_refills_and_flushes_in_batches() {
        let pool = Arc::new(PacketPool::with_capacity(256, 64));
        let mut mag = Magazine::with_size(Arc::clone(&pool), 8);
        // First take triggers one batch refill of size/2 buffers.
        let b = mag.take();
        assert_eq!(pool.stats().refills, 1);
        assert_eq!(mag.idle(), 3);
        // Next takes are pure cache hits: no further refills.
        let c = mag.take();
        let d = mag.take();
        assert_eq!(pool.stats().refills, 1);
        assert_eq!(pool.stats().misses, 0);
        // Overfilling the magazine flushes half back in one batch.
        for buf in [b, c, d] {
            mag.give(buf);
        }
        for _ in 0..8 {
            mag.give(BytesMut::with_capacity(pool.buf_capacity()));
        }
        assert!(pool.stats().flushes >= 1);
        assert!(mag.idle() <= 8);
    }

    #[test]
    fn magazine_exhaustion_falls_back_to_heap() {
        let pool = Arc::new(PacketPool::bounded(256, 0));
        let mut mag = Magazine::with_size(Arc::clone(&pool), 4);
        let bufs: Vec<_> = (0..10).map(|_| mag.take()).collect();
        assert_eq!(bufs.len(), 10);
        assert_eq!(pool.stats().misses, 10);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn dropped_magazine_flushes_to_depot() {
        let pool = Arc::new(PacketPool::with_capacity(256, 16));
        {
            let mut mag = Magazine::with_size(Arc::clone(&pool), 8);
            let b = mag.take();
            mag.give(b);
            assert!(pool.idle() < 16);
        }
        // The magazine's cached buffers are back in the depot.
        assert_eq!(pool.idle(), 16);
    }

    #[test]
    fn alloc_frame_round_trips_and_validates() {
        let pool = PacketPool::with_capacity(512, 2);
        let p = crate::PacketBuilder::tcp().payload(b"hello").build();
        let pooled = pool.alloc_frame(p.as_bytes()).unwrap();
        assert_eq!(pooled.as_bytes(), p.as_bytes());
        // Garbage frames error and return their buffer to the pool.
        assert!(pool.alloc_frame(&[0u8; 5]).is_err());
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn alloc_frames_batch_marks_malformed_slots() {
        let pool = PacketPool::with_capacity(512, 4);
        let good = crate::PacketBuilder::udp().payload(b"x").build();
        let frames: Vec<&[u8]> = vec![good.as_bytes(), &[1, 2, 3], good.as_bytes()];
        let mut out = Vec::new();
        pool.alloc_frames(frames, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_some() && out[1].is_none() && out[2].is_some());
    }

    #[test]
    fn copy_packets_preserves_bytes_and_fid() {
        let pool = PacketPool::with_capacity(512, 8);
        let mut p = crate::PacketBuilder::tcp().payload(b"abc").build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        let copies = pool.copy_packets(std::slice::from_ref(&p));
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].as_bytes(), p.as_bytes());
        assert_eq!(copies[0].fid(), Some(fid));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn threaded_stress_stays_consistent() {
        let pool = Arc::new(PacketPool::with_capacity(256, 128));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut mag = Magazine::with_size(pool, 16);
                    for round in 0..500 {
                        let mut held: Vec<BytesMut> =
                            (0..(round % 7) + 1).map(|_| mag.take()).collect();
                        for buf in held.drain(..) {
                            mag.give(buf);
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        // Conservation: everything taken was served from somewhere.
        assert!(s.hits + s.misses >= 2000);
        // Magazines drained back: no more idle buffers than the bound.
        assert!(pool.idle() <= 128);
    }
}
