//! Wire-format protocol headers.
//!
//! Each header type parses from and serializes to network byte order. These
//! are plain data structs (C-STRUCT-PRIVATE does not apply: they are
//! passive, compound wire records), used by [`crate::Packet`] for in-place
//! field access and by the builder for packet synthesis.

use std::fmt;
use std::net::Ipv4Addr;

use crate::packet::PacketError;
use crate::Result;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for 802.1Q VLAN tagging.
pub const ETHERTYPE_VLAN: u16 = 0x8100;
/// IP protocol number for the IPsec Authentication Header.
pub const IPPROTO_AH: u8 = 51;
/// Length of the Ethernet header in bytes.
pub const ETHERNET_LEN: usize = 14;
/// Length of the (option-less) IPv4 header in bytes.
pub const IPV4_LEN: usize = 20;
/// Length of the (option-less) TCP header in bytes.
pub const TCP_LEN: usize = 20;
/// Length of the UDP header in bytes.
pub const UDP_LEN: usize = 8;
/// Length of the fixed-ICV Authentication Header we emit (RFC 4302, with a
/// 12-byte integrity check value), in bytes.
pub const AH_LEN: usize = 24;

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ethernet {
    /// Destination MAC address.
    pub dst_mac: [u8; 6],
    /// Source MAC address.
    pub src_mac: [u8; 6],
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl Ethernet {
    /// Parses an Ethernet header from the start of `data`.
    ///
    /// # Errors
    /// Returns [`PacketError::Truncated`] if `data` is shorter than
    /// [`ETHERNET_LEN`].
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < ETHERNET_LEN {
            return Err(PacketError::Truncated { needed: ETHERNET_LEN, have: data.len() });
        }
        let mut dst_mac = [0u8; 6];
        let mut src_mac = [0u8; 6];
        dst_mac.copy_from_slice(&data[0..6]);
        src_mac.copy_from_slice(&data[6..12]);
        Ok(Self { dst_mac, src_mac, ethertype: u16::from_be_bytes([data[12], data[13]]) })
    }

    /// Writes this header into `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`ETHERNET_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..6].copy_from_slice(&self.dst_mac);
        out[6..12].copy_from_slice(&self.src_mac);
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
    }
}

impl Default for Ethernet {
    fn default() -> Self {
        Self {
            dst_mac: [0x02, 0, 0, 0, 0, 0x02],
            src_mac: [0x02, 0, 0, 0, 0, 0x01],
            ethertype: ETHERTYPE_IPV4,
        }
    }
}

/// An IPv4 header. Options are accepted on parse (skipped, length
/// reflected in [`Ipv4::header_len`]) and never emitted on write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4 {
    /// Header length in bytes (20 without options).
    pub header_len: usize,
    /// DSCP/ECN byte.
    pub tos: u8,
    /// Total length of the IP datagram (header + payload).
    pub total_len: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags + fragment offset (we never fragment; kept for fidelity).
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Header checksum as read from the wire (0 when building).
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4 {
    /// Parses an IPv4 header from the start of `data`, accepting (and
    /// skipping) options.
    ///
    /// # Errors
    /// Returns [`PacketError::Truncated`] if too short, or
    /// [`PacketError::Malformed`] for a non-4 version or an IHL below 5.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < IPV4_LEN {
            return Err(PacketError::Truncated { needed: IPV4_LEN, have: data.len() });
        }
        let ver_ihl = data[0];
        if ver_ihl >> 4 != 4 {
            return Err(PacketError::Malformed("not an IPv4 packet"));
        }
        let ihl = usize::from(ver_ihl & 0x0f);
        if ihl < 5 {
            return Err(PacketError::Malformed("IPv4 IHL below minimum"));
        }
        let header_len = ihl * 4;
        if data.len() < header_len {
            return Err(PacketError::Truncated { needed: header_len, have: data.len() });
        }
        Ok(Self {
            header_len,
            tos: data[1],
            total_len: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags_frag: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            protocol: data[9],
            checksum: u16::from_be_bytes([data[10], data[11]]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        })
    }

    /// Writes this header into `out` with a freshly computed checksum.
    /// Always emits the option-less 20-byte form; `total_len` is written
    /// as stored (callers adjusting payload sizes must update it).
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`IPV4_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0] = 0x45;
        out[1] = self.tos;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol;
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let ck = crate::checksum::internet_checksum(&out[..IPV4_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
    }
}

impl Default for Ipv4 {
    fn default() -> Self {
        Self {
            header_len: IPV4_LEN,
            tos: 0,
            #[allow(clippy::cast_possible_truncation)] // IPV4_LEN = 20
            total_len: IPV4_LEN as u16,
            identification: 0,
            flags_frag: 0x4000, // don't fragment
            ttl: 64,
            protocol: 6,
            checksum: 0,
            src: Ipv4Addr::UNSPECIFIED,
            dst: Ipv4Addr::UNSPECIFIED,
        }
    }
}

/// A TCP header. Options are accepted on parse (skipped, length
/// reflected in [`Tcp::header_len`]) and never emitted on write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tcp {
    /// Header length in bytes (20 without options).
    pub header_len: usize,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Checksum as read from the wire (0 when building).
    pub checksum: u16,
}

impl Default for Tcp {
    fn default() -> Self {
        Self {
            header_len: TCP_LEN,
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: 0,
            window: 0,
            checksum: 0,
        }
    }
}

impl Tcp {
    /// Parses a TCP header from the start of `data`, accepting (and
    /// skipping) options.
    ///
    /// # Errors
    /// Returns [`PacketError::Truncated`] if too short, or
    /// [`PacketError::Malformed`] if the data offset is below 5 words.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < TCP_LEN {
            return Err(PacketError::Truncated { needed: TCP_LEN, have: data.len() });
        }
        let offset_words = usize::from(data[12] >> 4);
        if offset_words < 5 {
            return Err(PacketError::Malformed("TCP data offset below minimum"));
        }
        let header_len = offset_words * 4;
        if data.len() < header_len {
            return Err(PacketError::Truncated { needed: header_len, have: data.len() });
        }
        Ok(Self {
            header_len,
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: data[13],
            window: u16::from_be_bytes([data[14], data[15]]),
            checksum: u16::from_be_bytes([data[16], data[17]]),
        })
    }

    /// Writes this header into `out` with the checksum field zeroed (the
    /// packet layer computes it after the payload is in place).
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`TCP_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4;
        out[13] = self.flags;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&[0, 0]);
        out[18..20].copy_from_slice(&[0, 0]); // urgent pointer
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Udp {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of UDP header + payload.
    pub length: u16,
    /// Checksum as read from the wire (0 when building).
    pub checksum: u16,
}

impl Udp {
    /// Parses a UDP header from the start of `data`.
    ///
    /// # Errors
    /// Returns [`PacketError::Truncated`] if `data` is shorter than
    /// [`UDP_LEN`].
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < UDP_LEN {
            return Err(PacketError::Truncated { needed: UDP_LEN, have: data.len() });
        }
        Ok(Self {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Writes this header into `out` with the checksum field zeroed.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`UDP_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
    }
}

/// An IPsec Authentication Header (RFC 4302) with a fixed 12-byte ICV.
///
/// This is the header SpeedyBox's VPN example encapsulates and decapsulates
/// (paper §IV-A1: "VPNs add an Authentication Header (AH) for each packet
/// before forwarding (encap), and remove the AH when the other end receives
/// the packet (decap)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthHeader {
    /// Protocol number of the header following the AH.
    pub next_header: u8,
    /// Security Parameters Index identifying the SA.
    pub spi: u32,
    /// Anti-replay sequence number.
    pub seq: u32,
    /// Integrity check value (truncated HMAC).
    pub icv: [u8; 12],
}

impl AuthHeader {
    /// Creates an AH for security association `spi` carrying `next_header`.
    #[must_use]
    pub fn new(spi: u32, seq: u32, next_header: u8) -> Self {
        Self { next_header, spi, seq, icv: [0; 12] }
    }

    /// Parses an AH from the start of `data`.
    ///
    /// # Errors
    /// Returns [`PacketError::Truncated`] if too short, or
    /// [`PacketError::Malformed`] if the payload-length field disagrees with
    /// the fixed ICV size we emit.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < AH_LEN {
            return Err(PacketError::Truncated { needed: AH_LEN, have: data.len() });
        }
        // payload len is in 4-byte words minus 2: (24/4)-2 = 4.
        if data[1] != 4 {
            return Err(PacketError::Malformed("unexpected AH length"));
        }
        let mut icv = [0u8; 12];
        icv.copy_from_slice(&data[12..24]);
        Ok(Self {
            next_header: data[0],
            spi: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            seq: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            icv,
        })
    }

    /// Writes this header into `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`AH_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0] = self.next_header;
        out[1] = 4; // payload length in words - 2
        out[2..4].copy_from_slice(&[0, 0]);
        out[4..8].copy_from_slice(&self.spi.to_be_bytes());
        out[8..12].copy_from_slice(&self.seq.to_be_bytes());
        out[12..24].copy_from_slice(&self.icv);
    }
}

impl fmt::Display for AuthHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AH(spi={:#x}, seq={})", self.spi, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_round_trip() {
        let eth = Ethernet {
            dst_mac: [1, 2, 3, 4, 5, 6],
            src_mac: [7, 8, 9, 10, 11, 12],
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = [0u8; ETHERNET_LEN];
        eth.write(&mut buf);
        assert_eq!(Ethernet::parse(&buf).unwrap(), eth);
    }

    #[test]
    fn ethernet_truncated() {
        assert!(matches!(
            Ethernet::parse(&[0u8; 5]),
            Err(PacketError::Truncated { needed: 14, have: 5 })
        ));
    }

    #[test]
    fn ipv4_round_trip_and_checksum() {
        let ip = Ipv4 {
            header_len: IPV4_LEN,
            tos: 0x10,
            total_len: 40,
            identification: 7,
            flags_frag: 0x4000,
            ttl: 63,
            protocol: 6,
            checksum: 0,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        };
        let mut buf = [0u8; IPV4_LEN];
        ip.write(&mut buf);
        assert!(crate::checksum::verify(&buf));
        let parsed = Ipv4::parse(&buf).unwrap();
        assert_eq!(parsed.src, ip.src);
        assert_eq!(parsed.dst, ip.dst);
        assert_eq!(parsed.ttl, 63);
        assert_ne!(parsed.checksum, 0);
    }

    #[test]
    fn ipv4_rejects_v6() {
        let mut buf = [0u8; IPV4_LEN];
        Ipv4::default().write(&mut buf);
        buf[0] = 0x65;
        assert!(matches!(Ipv4::parse(&buf), Err(PacketError::Malformed(_))));
    }

    #[test]
    fn ipv4_options_accepted_and_skipped() {
        let mut buf = [0u8; IPV4_LEN + 4];
        Ipv4::default().write(&mut buf[..IPV4_LEN]);
        buf[0] = 0x46;
        let ip = Ipv4::parse(&buf).unwrap();
        assert_eq!(ip.header_len, 24);
        // Truncated options area rejected; IHL below 5 malformed.
        assert!(matches!(
            Ipv4::parse(&buf[..IPV4_LEN]),
            Err(PacketError::Truncated { needed: 24, have: 20 })
        ));
        buf[0] = 0x44;
        assert!(matches!(Ipv4::parse(&buf), Err(PacketError::Malformed(_))));
    }

    #[test]
    fn tcp_round_trip() {
        let tcp = Tcp {
            src_port: 1234,
            dst_port: 80,
            seq: 99,
            ack: 100,
            flags: 0x12,
            window: 4096,
            ..Tcp::default()
        };
        let mut buf = [0u8; TCP_LEN];
        tcp.write(&mut buf);
        let parsed = Tcp::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 1234);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.seq, 99);
        assert_eq!(parsed.flags, 0x12);
    }

    #[test]
    fn tcp_options_accepted_and_skipped() {
        let mut buf = [0u8; TCP_LEN + 4];
        Tcp::default().write(&mut buf[..TCP_LEN]);
        buf[12] = 6 << 4;
        let t = Tcp::parse(&buf).unwrap();
        assert_eq!(t.header_len, 24);
        // A truncated options area is rejected.
        assert!(matches!(
            Tcp::parse(&buf[..TCP_LEN]),
            Err(PacketError::Truncated { needed: 24, have: 20 })
        ));
        // Data offset below 5 is malformed.
        buf[12] = 4 << 4;
        assert!(matches!(Tcp::parse(&buf), Err(PacketError::Malformed(_))));
    }

    #[test]
    fn udp_round_trip() {
        let udp = Udp { src_port: 53, dst_port: 5353, length: 20, checksum: 0 };
        let mut buf = [0u8; UDP_LEN];
        udp.write(&mut buf);
        let parsed = Udp::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 53);
        assert_eq!(parsed.length, 20);
    }

    #[test]
    fn ah_round_trip() {
        let mut ah = AuthHeader::new(0xdead_beef, 42, 6);
        ah.icv = [9u8; 12];
        let mut buf = [0u8; AH_LEN];
        ah.write(&mut buf);
        assert_eq!(AuthHeader::parse(&buf).unwrap(), ah);
    }

    #[test]
    fn ah_rejects_wrong_length_field() {
        let mut buf = [0u8; AH_LEN];
        AuthHeader::new(1, 1, 6).write(&mut buf);
        buf[1] = 7;
        assert!(matches!(AuthHeader::parse(&buf), Err(PacketError::Malformed(_))));
    }
}
