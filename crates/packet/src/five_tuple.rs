//! Flow identity: the classic 5-tuple and the SpeedyBox 20-bit flow ID.
//!
//! The SpeedyBox Packet Classifier (paper §VI-B) hashes the 5-tuple of a
//! packet into a 20-bit FID and attaches it as packet metadata. The FID stays
//! constant along the chain even when NFs rewrite the 5-tuple, so every
//! Local MAT and the Global MAT key their rules off the same identity.

use std::fmt;
use std::net::Ipv4Addr;

/// Width of a SpeedyBox flow ID in bits (paper §VI-B: "hashes the five tuple
/// of a packet header to a 20 bits FID").
pub const FID_BITS: u32 = 20;

/// Bitmask selecting the valid bits of a [`Fid`].
pub const FID_MASK: u32 = (1 << FID_BITS) - 1;

/// Transport protocol carried in the IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Protocol {
    /// TCP (IP protocol number 6).
    Tcp = 6,
    /// UDP (IP protocol number 17).
    Udp = 17,
}

impl Protocol {
    /// IP protocol number for this protocol.
    #[must_use]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Parses an IP protocol number.
    #[must_use]
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            _ => None,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => f.write_str("tcp"),
            Protocol::Udp => f.write_str("udp"),
        }
    }
}

/// The classic connection 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// Creates a 5-tuple from its parts.
    #[must_use]
    pub fn new(
        src_ip: Ipv4Addr,
        src_port: u16,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        protocol: Protocol,
    ) -> Self {
        Self { src_ip, dst_ip, src_port, dst_port, protocol }
    }

    /// The reverse direction of this flow (server-to-client).
    #[must_use]
    pub fn reversed(&self) -> Self {
        Self {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// Hashes this 5-tuple to the SpeedyBox 20-bit flow ID.
    ///
    /// Uses FNV-1a over the canonical byte encoding, folded down to
    /// [`FID_BITS`] bits. Distinct flows may collide (as in the paper's
    /// prototype); [`crate::Packet`] carries the full tuple so callers can
    /// detect collisions when they must.
    #[must_use]
    pub fn fid(&self) -> Fid {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.src_ip.octets() {
            eat(b);
        }
        for b in self.dst_ip.octets() {
            eat(b);
        }
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(self.protocol.number());
        // XOR-fold 64 -> 20 bits to keep the avalanche of the full hash.
        #[allow(clippy::cast_possible_truncation)] // fold then mask to FID_BITS
        let folded = (h ^ (h >> FID_BITS) ^ (h >> (2 * FID_BITS))) as u32;
        Fid(folded & FID_MASK)
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}:{}->{}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// A 20-bit SpeedyBox flow ID, attached to packets as metadata.
///
/// The FID is assigned by the Packet Classifier from the packet's *original*
/// 5-tuple and remains stable even when NFs rewrite headers, which is what
/// lets Local MATs and the Global MAT agree on flow identity (paper §III,
/// §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fid(u32);

impl Fid {
    /// Wraps a raw value, masking it to 20 bits.
    #[must_use]
    pub fn new(raw: u32) -> Self {
        Fid(raw & FID_MASK)
    }

    /// The raw 20-bit value.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }

    /// Index usable for direct-addressed tables of size `1 << FID_BITS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fid:{:05x}", self.0)
    }
}

impl From<u32> for Fid {
    fn from(raw: u32) -> Self {
        Fid::new(raw)
    }
}

impl fmt::LowerHex for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(sp: u16, dp: u16) -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            Ipv4Addr::new(192, 168, 0, 2),
            dp,
            Protocol::Tcp,
        )
    }

    #[test]
    fn fid_is_deterministic() {
        assert_eq!(ft(1000, 80).fid(), ft(1000, 80).fid());
    }

    #[test]
    fn fid_fits_in_20_bits() {
        for sp in 0..2000u16 {
            let f = ft(sp, 80).fid();
            assert!(f.value() <= FID_MASK);
        }
    }

    #[test]
    fn fid_differs_for_different_flows() {
        // Not guaranteed in general (20-bit space), but these few must differ
        // or the hash would be badly broken.
        assert_ne!(ft(1000, 80).fid(), ft(1001, 80).fid());
        assert_ne!(ft(1000, 80).fid(), ft(1000, 443).fid());
    }

    #[test]
    fn fid_distribution_is_spread() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for sp in 0..4096u16 {
            seen.insert(ft(sp, 80).fid());
        }
        // With 2^20 slots and 4096 samples, collisions should be rare.
        assert!(seen.len() > 4000, "too many collisions: {}", seen.len());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let f = ft(1000, 80);
        let r = f.reversed();
        assert_eq!(r.src_port, 80);
        assert_eq!(r.dst_port, 1000);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn protocol_numbers_round_trip() {
        assert_eq!(Protocol::from_number(Protocol::Tcp.number()), Some(Protocol::Tcp));
        assert_eq!(Protocol::from_number(Protocol::Udp.number()), Some(Protocol::Udp));
        assert_eq!(Protocol::from_number(47), None);
    }

    #[test]
    fn fid_new_masks() {
        assert_eq!(Fid::new(u32::MAX).value(), FID_MASK);
    }

    #[test]
    fn display_formats() {
        let f = ft(1000, 80);
        assert_eq!(f.to_string(), "tcp/10.0.0.1:1000->192.168.0.2:80");
        assert!(f.fid().to_string().starts_with("fid:"));
    }
}
