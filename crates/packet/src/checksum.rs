//! Internet checksum (RFC 1071) and protocol-specific helpers.
//!
//! SpeedyBox fixes up checksums once, after header-action consolidation
//! (paper §V-B), instead of per NF. These helpers are used by the packet
//! layer and by the consolidation fix-up step.

use std::net::Ipv4Addr;

/// Computes the ones-complement internet checksum over `data`.
///
/// The returned value is ready to be stored in a checksum field (i.e., it is
/// already complemented). Computing the checksum over data that *includes* a
/// correct checksum field yields zero in the folded sum, so
/// `fold(sum) == 0xFFFF` verification is provided by [`verify`].
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_bytes(0, data))
}

/// Verifies that `data` (including its embedded checksum field) checksums to
/// the all-ones pattern.
#[must_use]
pub fn verify(data: &[u8]) -> bool {
    fold(sum_bytes(0, data)) == 0xFFFF
}

/// Adds `data` into a running 32-bit ones-complement accumulator.
#[must_use]
pub fn sum_bytes(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
#[must_use]
#[allow(clippy::cast_possible_truncation)] // loop exits with acc <= 0xFFFF
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Sums the TCP/UDP pseudo-header for IPv4.
#[must_use]
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, l4_len: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum_bytes(acc, &src.octets());
    acc = sum_bytes(acc, &dst.octets());
    acc += u32::from(protocol);
    acc += u32::from(l4_len);
    acc
}

/// Incrementally updates a stored checksum after some covered 16-bit words
/// changed (RFC 1624, eqn. 3): `HC' = ~(~HC + ~m + m')`.
///
/// `old_sum` is the ones-complement sum (un-complemented, as produced by
/// [`sum_bytes`]) of the covered words *before* the change and `new_sum`
/// the sum of the same words *after*. Including unchanged words in both
/// sums is harmless — they cancel under the end-around fold.
///
/// The raw result is byte-identical to [`internet_checksum`] over the new
/// contents whenever `old_ck` was valid for the old contents *and* the
/// covered data is not all-zero — impossible for an IPv4 header (first
/// byte `0x45`) or an L4 segment with its pseudo-header (protocol ≥ 6),
/// so no negative-zero forcing is applied here. UDP's "0 means no
/// checksum, transmit 0xFFFF" rule (RFC 768) is the caller's job, exactly
/// as with [`l4_checksum`].
#[must_use]
pub fn incremental_update(old_ck: u16, old_sum: u32, new_sum: u32) -> u16 {
    !fold(u32::from(!old_ck) + u32::from(!fold(old_sum)) + new_sum)
}

/// Computes a TCP or UDP checksum given the pseudo-header inputs and the L4
/// segment (header + payload) with its checksum field zeroed.
#[must_use]
#[allow(clippy::cast_possible_truncation)] // L4 segments fit the 16-bit length field
pub fn l4_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let acc = pseudo_header_sum(src, dst, protocol, segment.len() as u16);
    let out = !fold(sum_bytes(acc, segment));
    // UDP uses 0 to mean "no checksum"; transmit 0xFFFF instead (RFC 768).
    if out == 0 && protocol == 17 {
        0xFFFF
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_bytes(0, &data)), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn checksum_then_verify() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
    }

    #[test]
    fn corrupt_data_fails_verify() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        data[0] ^= 0x10;
        assert!(!verify(&data));
    }

    #[test]
    fn empty_data_checksum() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // Valid IPv4-style header; rewrite a covered word and check the
        // RFC 1624 patch lands on exactly what a recompute would store.
        let mut data =
            vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0, 10, 0, 0, 1];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());

        for (offset, word) in [(12usize, [192u8, 168u8]), (4, [0xAB, 0xCD]), (8, [0x3F, 0x11])] {
            let old_ck = u16::from_be_bytes([data[10], data[11]]);
            let old_sum = sum_bytes(0, &data[offset..offset + 2]);
            data[offset..offset + 2].copy_from_slice(&word);
            let new_sum = sum_bytes(0, &data[offset..offset + 2]);
            let patched = incremental_update(old_ck, old_sum, new_sum);

            let mut zeroed = data.clone();
            zeroed[10..12].copy_from_slice(&[0, 0]);
            assert_eq!(patched, internet_checksum(&zeroed), "offset {offset}");
            data[10..12].copy_from_slice(&patched.to_be_bytes());
            assert!(verify(&data));
        }
    }

    #[test]
    fn incremental_unchanged_words_cancel() {
        // Feeding words that did not change into both sums is a no-op.
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        let sum = sum_bytes(0, &data[0..8]);
        assert_eq!(incremental_update(ck, sum, sum), ck);
    }

    #[test]
    fn incremental_can_produce_zero_like_tcp_recompute() {
        // When the true recomputed checksum is 0 (covered data folds to
        // 0xFFFF), the raw incremental result must also be 0 — matching
        // internet_checksum / TCP semantics, with no negative-zero forcing.
        let old = [0x00u8, 0x01, 0x00, 0x02];
        let old_ck = internet_checksum(&old);
        // New contents folding to 0xFFFF: 0xFFFF + 0x0000.
        let new = [0xFFu8, 0xFF, 0x00, 0x00];
        assert_eq!(internet_checksum(&new), 0);
        let patched = incremental_update(old_ck, sum_bytes(0, &old), sum_bytes(0, &new));
        assert_eq!(patched, 0);
    }

    #[test]
    fn udp_zero_becomes_all_ones() {
        let src = Ipv4Addr::UNSPECIFIED;
        let dst = Ipv4Addr::UNSPECIFIED;
        // Search for a 2-byte segment whose UDP checksum would be zero; the
        // RFC 768 rule must map it to 0xFFFF. TCP keeps the raw zero.
        let mut found = false;
        for hi in 0..=255u8 {
            for lo in 0..=255u8 {
                let seg = [hi, lo];
                let raw = !fold(sum_bytes(pseudo_header_sum(src, dst, 17, 2), &seg));
                if raw == 0 {
                    assert_eq!(l4_checksum(src, dst, 17, &seg), 0xFFFF);
                    found = true;
                }
            }
        }
        assert!(found, "no zero-checksum segment found");
    }
}
