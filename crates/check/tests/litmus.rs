//! Framework litmus tests: before trusting the checker on the SpeedyBox
//! protocols, prove it (a) explores enough schedules to find classic weak-
//! memory behaviours, (b) does not invent behaviours strong orderings
//! forbid, and (c) replays printed schedules deterministically.

use std::sync::Arc as StdArc;

use speedybox_check::{
    check_exhaustive, fact, spawn, BugKind, Checker, Config, ModelArc, ModelAtomicUsize,
    ModelMutex, Ordering,
};

/// Store buffering (Dekker): with SeqCst everywhere, both threads reading
/// 0 is impossible — the checker must never observe it.
#[test]
fn store_buffering_seqcst_is_sc() {
    let out = check_exhaustive("sb-seqcst", 4, || {
        let x = StdArc::new(ModelAtomicUsize::new("x", 0));
        let y = StdArc::new(ModelAtomicUsize::new("y", 0));
        let (x1, y1) = (x.clone(), y.clone());
        let a = spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let b = spawn(move || {
            y.store(1, Ordering::SeqCst);
            x.load(Ordering::SeqCst)
        });
        let (ra, rb) = (a.join(), b.join());
        assert!(!(ra == 0 && rb == 0), "SeqCst store buffering produced r1=r2=0");
        if ra == 0 || rb == 0 {
            fact("one thread read 0");
        }
    });
    // Sanity: the interesting interleaving (one stale side) is reachable.
    out.assert_fact("one thread read 0");
}

/// The same shape with Relaxed loads must exhibit r1=r2=0 in at least one
/// explored schedule — this is what proves stale-read branching works.
#[test]
fn store_buffering_relaxed_reorders() {
    let out = check_exhaustive("sb-relaxed", 4, || {
        let x = StdArc::new(ModelAtomicUsize::new("x", 0));
        let y = StdArc::new(ModelAtomicUsize::new("y", 0));
        let (x1, y1) = (x.clone(), y.clone());
        let a = spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let b = spawn(move || {
            y.store(1, Ordering::Relaxed);
            x.load(Ordering::Relaxed)
        });
        if a.join() == 0 && b.join() == 0 {
            fact("both read 0");
        }
    });
    out.assert_fact("both read 0");
}

/// Message passing: release store of the flag publishes the relaxed data
/// store; an acquire reader that sees the flag must see the data.
#[test]
fn message_passing_release_acquire() {
    check_exhaustive("mp-rel-acq", 4, || {
        let data = StdArc::new(ModelAtomicUsize::new("data", 0));
        let flag = StdArc::new(ModelAtomicUsize::new("flag", 0));
        let (d1, f1) = (data.clone(), flag.clone());
        let w = spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Release);
        });
        let r = spawn(move || {
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "acquire read the flag but not the data"
                );
            }
        });
        w.join();
        r.join();
    });
}

/// Mutation twin of the above: a Relaxed flag store publishes nothing, so
/// the stale-data read must surface as a caught panic.
#[test]
fn message_passing_relaxed_flag_is_caught() {
    let out = Checker::new(Config::exhaustive(4)).check("mp-relaxed-twin", || {
        let data = StdArc::new(ModelAtomicUsize::new("data", 0));
        let flag = StdArc::new(ModelAtomicUsize::new("flag", 0));
        let (d1, f1) = (data.clone(), flag.clone());
        let w = spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Relaxed); // seeded bug: Release -> Relaxed
        });
        let r = spawn(move || {
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
            }
        });
        w.join();
        r.join();
    });
    let bug = out.expect_bug(BugKind::Panic).clone();

    // The printed schedule must replay to the same violation.
    let replayed = speedybox_check::replay("mp-relaxed-twin-replay", &bug.schedule, || {
        let data = StdArc::new(ModelAtomicUsize::new("data", 0));
        let flag = StdArc::new(ModelAtomicUsize::new("flag", 0));
        let (d1, f1) = (data.clone(), flag.clone());
        let w = spawn(move || {
            d1.store(42, Ordering::Relaxed);
            f1.store(1, Ordering::Relaxed);
        });
        let r = spawn(move || {
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
            }
        });
        w.join();
        r.join();
    });
    replayed.expect_bug(BugKind::Panic);
}

/// Lost update: unsynchronized load+store (not an RMW) must lose an
/// increment in some schedule, while fetch_add never does.
#[test]
fn lost_update_vs_rmw() {
    let out = check_exhaustive("lost-update", 4, || {
        let c = StdArc::new(ModelAtomicUsize::new("c", 0));
        let c1 = c.clone();
        let a = spawn(move || {
            let v = c1.load(Ordering::SeqCst);
            c1.store(v + 1, Ordering::SeqCst);
        });
        let c2 = c.clone();
        let b = spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        a.join();
        b.join();
        if c.load(Ordering::SeqCst) == 1 {
            fact("update lost");
        }
    });
    out.assert_fact("update lost");

    check_exhaustive("rmw-no-lost-update", 4, || {
        let c = StdArc::new(ModelAtomicUsize::new("c", 0));
        let c1 = c.clone();
        let a = spawn(move || {
            c1.fetch_add(1, Ordering::SeqCst);
        });
        let c2 = c.clone();
        let b = spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        a.join();
        b.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "fetch_add lost an update");
    });
}

/// Mutexes provide mutual exclusion and publish writes to the next owner.
#[test]
fn mutex_counter() {
    check_exhaustive("mutex-counter", 4, || {
        let m = StdArc::new(ModelMutex::new("m", 0u64));
        let m1 = m.clone();
        let a = spawn(move || {
            let mut g = m1.lock();
            *g += 1;
        });
        let m2 = m.clone();
        let b = spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        a.join();
        b.join();
        assert_eq!(*m.lock(), 2);
    });
}

/// AB-BA lock ordering must be reported by the deadlock oracle.
#[test]
fn abba_deadlock_detected() {
    let out = Checker::new(Config::exhaustive(4)).check("abba", || {
        let a = StdArc::new(ModelMutex::new("a", ()));
        let b = StdArc::new(ModelMutex::new("b", ()));
        let (a1, b1) = (a.clone(), b.clone());
        let t1 = spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let t2 = spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        });
        t1.join();
        t2.join();
    });
    out.expect_bug(BugKind::Deadlock);
}

/// An allocation that is never released must trip the leak oracle.
#[test]
fn leak_detected() {
    let out = Checker::new(Config::exhaustive(2)).check("leak", || {
        let v = ModelArc::new("leaked", 7u64);
        let _raw = v.into_raw(); // strong ref parked in a raw handle forever
    });
    out.expect_bug(BugKind::Leak);
}

/// Raw-handle misuse: freeing while a raw copy is still in use.
#[test]
fn use_after_free_detected() {
    let out = Checker::new(Config::exhaustive(4)).check("uaf", || {
        let v = ModelArc::new("v", 1u64);
        let raw = v.into_raw();
        let reader = spawn(move || {
            // Mint a reference from the raw handle; races with the free.
            speedybox_check::raw_increment_strong_count(raw);
            speedybox_check::raw_drop(raw);
        });
        // Drop the only counted reference; frees if the reader lost.
        speedybox_check::raw_drop(raw);
        reader.join();
    });
    out.expect_bug(BugKind::UseAfterFree);
}

/// The random walk finds the relaxed store-buffering behaviour too, and
/// reports the seed that did.
#[test]
fn random_walk_finds_weak_behaviour() {
    let out = Checker::new(Config::random(0xC0FFEE, 300)).check("sb-relaxed-random", || {
        let x = StdArc::new(ModelAtomicUsize::new("x", 0));
        let y = StdArc::new(ModelAtomicUsize::new("y", 0));
        let (x1, y1) = (x.clone(), y.clone());
        let a = spawn(move || {
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed)
        });
        let b = spawn(move || {
            y.store(1, Ordering::Relaxed);
            x.load(Ordering::Relaxed)
        });
        if a.join() == 0 && b.join() == 0 {
            fact("both read 0");
        }
    });
    out.assert_fact("both read 0");
}

/// Sleep sets only prune redundant interleavings: the independent-ops
/// scenario still explores both orders' single representative and the
/// exploration count shrinks versus the unpruned run.
#[test]
fn sleep_sets_prune_but_preserve() {
    let scenario = || {
        let x = StdArc::new(ModelAtomicUsize::new("x", 0));
        let y = StdArc::new(ModelAtomicUsize::new("y", 0));
        let x1 = x.clone();
        let a = spawn(move || x1.store(1, Ordering::SeqCst));
        let y1 = y.clone();
        let b = spawn(move || y1.store(1, Ordering::SeqCst));
        a.join();
        b.join();
        assert_eq!(x.load(Ordering::SeqCst), 1);
        assert_eq!(y.load(Ordering::SeqCst), 1);
    };
    let pruned = Checker::new(Config::exhaustive(8)).check("indep-pruned", scenario);
    pruned.assert_clean();
    let mut unpruned_cfg = Config::exhaustive(8);
    unpruned_cfg.sleep_sets = false;
    let unpruned = Checker::new(unpruned_cfg).check("indep-unpruned", scenario);
    unpruned.assert_clean();
    assert!(
        pruned.executions < unpruned.executions,
        "sleep sets failed to prune: {} vs {}",
        pruned.executions,
        unpruned.executions
    );
}
