//! Model atomics. Each operation is a scheduling point; loads with
//! non-`SeqCst` ordering additionally branch over the visible store
//! history (see `exec.rs` for the visibility rules).

use crate::exec::{ctx, Op, Ordering, RmwKind, Value};

macro_rules! model_atomic {
    ($name:ident, $prim:ty) => {
        /// Virtual atomic: the value lives in the execution's store
        /// history, not in the struct.
        pub struct $name {
            loc: usize,
        }

        // Model values are `u64`; narrowing back to the fronting type is
        // lossless by construction (the model only ever holds values the
        // fronting type stored or wrapped).
        #[allow(clippy::cast_possible_truncation)]
        impl $name {
            /// Register a new atomic. `label` names it in traces.
            pub fn new(label: &str, init: $prim) -> Self {
                let (exec, _) = ctx();
                let loc = exec.with_state(|g| g.register_atomic(label.to_string(), init as Value));
                $name { loc }
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                let (exec, me) = ctx();
                exec.yield_op(me, Op::Load { loc: self.loc, ord }).val as $prim
            }

            pub fn store(&self, val: $prim, ord: Ordering) {
                let (exec, me) = ctx();
                exec.yield_op(me, Op::Store { loc: self.loc, ord, val: val as Value });
            }

            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                self.rmw(RmwKind::Swap(val as Value), ord).0 as $prim
            }

            pub fn fetch_add(&self, d: $prim, ord: Ordering) -> $prim {
                self.rmw(RmwKind::FetchAdd(d as Value), ord).0 as $prim
            }

            pub fn fetch_sub(&self, d: $prim, ord: Ordering) -> $prim {
                self.rmw(RmwKind::FetchSub(d as Value), ord).0 as $prim
            }

            pub fn compare_exchange(
                &self,
                expect: $prim,
                new: $prim,
                ord: Ordering,
                _fail: Ordering,
            ) -> Result<$prim, $prim> {
                let (old, ok) = self.rmw(
                    RmwKind::CompareExchange { expect: expect as Value, new: new as Value },
                    ord,
                );
                if ok {
                    Ok(old as $prim)
                } else {
                    Err(old as $prim)
                }
            }

            fn rmw(&self, kind: RmwKind, ord: Ordering) -> (Value, bool) {
                let (exec, me) = ctx();
                let r = exec.yield_op(me, Op::Rmw { loc: self.loc, ord, kind });
                (r.val, r.ok)
            }
        }
    };
}

model_atomic!(ModelAtomicUsize, usize);
model_atomic!(ModelAtomicU64, u64);
model_atomic!(ModelAtomicU32, u32);

/// Boolean atomic built on the same machinery (0 = false, 1 = true).
pub struct ModelAtomicBool {
    inner: ModelAtomicU64,
}

impl ModelAtomicBool {
    pub fn new(label: &str, init: bool) -> Self {
        ModelAtomicBool { inner: ModelAtomicU64::new(label, u64::from(init)) }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord) != 0
    }

    pub fn store(&self, val: bool, ord: Ordering) {
        self.inner.store(u64::from(val), ord);
    }

    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        self.inner.swap(u64::from(val), ord) != 0
    }

    pub fn compare_exchange(
        &self,
        expect: bool,
        new: bool,
        ord: Ordering,
        fail: Ordering,
    ) -> Result<bool, bool> {
        self.inner
            .compare_exchange(u64::from(expect), u64::from(new), ord, fail)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}
