//! Model mutex. Lock/unlock are scheduling points; a `Lock` op is only
//! enabled while the mutex is free, so blocked threads simply stay parked
//! (and a cycle of them is reported by the deadlock oracle). The data
//! itself sits in a real `std::sync::Mutex` that is uncontended by
//! construction — only the granted owner ever touches it.

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdGuard;

use crate::exec::{ctx, Op};

pub struct ModelMutex<T> {
    id: usize,
    data: StdMutex<T>,
}

impl<T> ModelMutex<T> {
    pub fn new(label: &str, value: T) -> Self {
        let (exec, _) = ctx();
        let id = exec.with_state(|g| g.register_mutex(label.to_string()));
        ModelMutex { id, data: StdMutex::new(value) }
    }

    pub fn lock(&self) -> ModelMutexGuard<'_, T> {
        let (exec, me) = ctx();
        exec.yield_op(me, Op::Lock { mutex: self.id });
        let inner = self.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ModelMutexGuard { inner: Some(inner), id: self.id }
    }
}

pub struct ModelMutexGuard<'a, T> {
    inner: Option<StdGuard<'a, T>>,
    id: usize,
}

impl<T> std::ops::Deref for ModelMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for ModelMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for ModelMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data guard before the model unlock so the next owner
        // (granted only after the Unlock op executes) finds it free.
        self.inner.take();
        let (exec, me) = ctx();
        exec.yield_op(me, Op::Unlock { mutex: self.id });
    }
}
