//! Execution engine: one controlled execution of a scenario.
//!
//! Model threads are real OS threads, but only one ever runs between two
//! *scheduling points*. Every operation on a model primitive (atomic,
//! mutex, refcount) is a scheduling point: the thread parks, publishes the
//! operation it is about to perform, and waits until the controller grants
//! it the right to run. The controller (driven by a [`Chooser`]) therefore
//! sees the full set of enabled transitions at every step and can
//! enumerate or randomize interleavings deterministically.
//!
//! The memory model is a documented simplification of C11 (DESIGN.md §14):
//! each atomic location keeps its full store history plus the release view
//! captured at each releasing store, and each thread keeps a per-location
//! view index. `SeqCst` loads read the newest store; `Acquire`/`Relaxed`
//! loads may read any store at or after the thread's view index — the
//! choice is a branch point for the explorer, which is exactly how a
//! weakened ordering becomes an observable (and checkable) bug.

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread as os_thread;

/// All model atomics are modelled over `u64`.
pub type Value = u64;

/// Memory orderings understood by the model (mirrors `std::sync::atomic`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ordering {
    pub(crate) fn acquires(self) -> bool {
        matches!(self, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }
    pub(crate) fn releases(self) -> bool {
        matches!(self, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ordering::Relaxed => "Relaxed",
            Ordering::Acquire => "Acquire",
            Ordering::Release => "Release",
            Ordering::AcqRel => "AcqRel",
            Ordering::SeqCst => "SeqCst",
        };
        f.write_str(s)
    }
}

/// Read-modify-write flavours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum RmwKind {
    FetchAdd(Value),
    FetchSub(Value),
    Swap(Value),
    CompareExchange { expect: Value, new: Value },
}

/// A pending operation at a scheduling point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First scheduling point of every thread; keeps thread start-up under
    /// scheduler control so object registration order stays deterministic.
    Start,
    Load {
        loc: usize,
        ord: Ordering,
    },
    Store {
        loc: usize,
        ord: Ordering,
        val: Value,
    },
    Rmw {
        loc: usize,
        ord: Ordering,
        kind: RmwKind,
    },
    Lock {
        mutex: usize,
    },
    Unlock {
        mutex: usize,
    },
    ArcIncr {
        alloc: usize,
    },
    ArcDecr {
        alloc: usize,
    },
    ArcRead {
        alloc: usize,
    },
    Join {
        target: usize,
    },
}

/// Object touched by an op, for the independence relation.
#[derive(PartialEq, Eq)]
enum Obj {
    Atomic(usize),
    Mutex(usize),
    Alloc(usize),
    Control,
}

impl Op {
    fn obj(&self) -> Obj {
        match self {
            Op::Load { loc, .. } | Op::Store { loc, .. } | Op::Rmw { loc, .. } => Obj::Atomic(*loc),
            Op::Lock { mutex } | Op::Unlock { mutex } => Obj::Mutex(*mutex),
            Op::ArcIncr { alloc } | Op::ArcDecr { alloc } | Op::ArcRead { alloc } => {
                Obj::Alloc(*alloc)
            }
            Op::Start | Op::Join { .. } => Obj::Control,
        }
    }

    fn is_read(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::ArcRead { .. })
    }
}

/// Conservative dependence relation for sleep-set pruning: two ops commute
/// iff they touch different objects, or both only read the same object.
/// Control ops (spawn/start/join) are treated as dependent on everything.
pub(crate) fn dependent(a: &Op, b: &Op) -> bool {
    let (oa, ob) = (a.obj(), b.obj());
    if oa == Obj::Control || ob == Obj::Control {
        return true;
    }
    oa == ob && !(a.is_read() && b.is_read())
}

/// Classes of property violation the oracles can report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugKind {
    /// A raw refcount handle was used after its allocation was freed.
    UseAfterFree,
    /// An allocation's refcount was decremented after it was freed.
    DoubleFree,
    /// An allocation was still live when the execution finished.
    Leak,
    /// No enabled thread, but not all threads finished.
    Deadlock,
    /// A model thread panicked (failed assertion in the scenario).
    Panic,
    /// Execution exceeded the per-execution step budget.
    StepLimit,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::UseAfterFree => "use-after-free",
            BugKind::DoubleFree => "double-free",
            BugKind::Leak => "leak",
            BugKind::Deadlock => "deadlock",
            BugKind::Panic => "panic",
            BugKind::StepLimit => "step-limit",
        };
        f.write_str(s)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Bug {
    pub kind: BugKind,
    pub message: String,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// OS thread exists but has not reached its first scheduling point.
    Starting,
    Parked(Op),
    /// Granted and running user code until the next scheduling point.
    Running,
    Finished,
}

pub(crate) struct ThreadSlot {
    pub phase: Phase,
    /// Per-atomic minimum visible store index.
    pub view: Vec<usize>,
    pub name: String,
}

struct StoreRec {
    val: Value,
    /// Release view captured at a releasing store; `None` for `Relaxed`.
    view: Option<Vec<usize>>,
}

struct LocState {
    label: String,
    stores: Vec<StoreRec>,
}

struct MutexState {
    label: String,
    locked_by: Option<usize>,
    /// View released at the last unlock; joined on the next lock.
    release_view: Option<Vec<usize>>,
}

struct AllocState {
    label: String,
    strong: usize,
    alive: bool,
    value: Option<Arc<dyn Any + Send + Sync>>,
}

/// Result of executing one op.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpResult {
    pub val: Value,
    pub ok: bool,
}

const TRACE_CAP: usize = 4096;

pub(crate) struct ExecInner {
    pub threads: Vec<ThreadSlot>,
    atomics: Vec<LocState>,
    mutexes: Vec<MutexState>,
    allocs: Vec<AllocState>,
    /// Thread currently granted the right to run its parked op.
    granted: Option<usize>,
    /// Absolute store index chosen for the granted load, if branching.
    value_choice: Option<usize>,
    pub poisoned: bool,
    pub pruned: bool,
    pub bugs: Vec<Bug>,
    pub facts: BTreeSet<String>,
    pub trace: Vec<String>,
    steps: usize,
    max_steps: usize,
    os_handles: Vec<os_thread::JoinHandle<()>>,
}

pub(crate) struct ExecShared {
    pub state: Mutex<ExecInner>,
    pub cv: Condvar,
}

/// Panic payload used to abort surviving threads once an execution is
/// poisoned (bug found, deadlock, or prune). Never surfaces to the user.
pub(crate) struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<ExecShared>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> (Arc<ExecShared>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("speedybox-check model primitive used outside a checked execution")
    })
}

impl ExecShared {
    fn new(max_steps: usize) -> Self {
        ExecShared {
            state: Mutex::new(ExecInner {
                threads: Vec::new(),
                atomics: Vec::new(),
                mutexes: Vec::new(),
                allocs: Vec::new(),
                granted: None,
                value_choice: None,
                poisoned: false,
                pruned: false,
                bugs: Vec::new(),
                facts: BTreeSet::new(),
                trace: Vec::new(),
                steps: 0,
                max_steps,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Park at a scheduling point, wait for the grant, execute the op.
    pub(crate) fn yield_op(self: &Arc<Self>, me: usize, op: Op) -> OpResult {
        let mut g = self.state.lock().unwrap();
        if g.poisoned {
            if os_thread::panicking() {
                // Free-run teardown: drops during unwinding still execute
                // their ops (so refcounts stay coherent) without parking.
                return g.execute(me, &op, None);
            }
            drop(g);
            panic::panic_any(AbortToken);
        }
        g.threads[me].phase = Phase::Parked(op);
        self.cv.notify_all();
        loop {
            if g.poisoned {
                drop(g);
                if os_thread::panicking() {
                    // Cannot happen in practice (an unwinding thread was
                    // free-run above), but never park while unwinding.
                    return OpResult { val: 0, ok: false };
                }
                panic::panic_any(AbortToken);
            }
            if g.granted == Some(me) {
                break;
            }
            g = self.cv.wait(g).unwrap();
        }
        g.granted = None;
        let choice = g.value_choice.take();
        let Phase::Parked(op) = std::mem::replace(&mut g.threads[me].phase, Phase::Running) else {
            unreachable!("granted thread must be parked");
        };
        let res = g.execute(me, &op, choice);
        self.cv.notify_all();
        res
    }

    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut ExecInner) -> R) -> R {
        f(&mut self.state.lock().unwrap())
    }

    fn poison(&self, g: &mut ExecInner) {
        g.poisoned = true;
        self.cv.notify_all();
    }
}

impl ExecInner {
    fn bug(&mut self, kind: BugKind, message: String) {
        // First bug wins; everything after it runs in teardown mode.
        if self.bugs.is_empty() {
            self.push_trace(format!("!! {kind}: {message}"));
            self.bugs.push(Bug { kind, message });
            self.poisoned = true;
        }
    }

    pub(crate) fn record_panic(&mut self, tid: usize, message: &str) {
        let name = self.threads[tid].name.clone();
        self.bug(BugKind::Panic, format!("[{name}] {message}"));
    }

    fn push_trace(&mut self, line: String) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(line);
        }
    }

    fn ensure_view(&mut self, loc: usize) {
        for t in &mut self.threads {
            if t.view.len() <= loc {
                t.view.resize(loc + 1, 0);
            }
        }
    }

    pub(crate) fn register_atomic(&mut self, label: String, init: Value) -> usize {
        let loc = self.atomics.len();
        self.atomics.push(LocState { label, stores: vec![StoreRec { val: init, view: None }] });
        self.ensure_view(loc);
        loc
    }

    pub(crate) fn register_mutex(&mut self, label: String) -> usize {
        self.mutexes.push(MutexState { label, locked_by: None, release_view: None });
        self.mutexes.len() - 1
    }

    pub(crate) fn register_alloc(
        &mut self,
        label: String,
        value: Arc<dyn Any + Send + Sync>,
    ) -> usize {
        self.allocs.push(AllocState { label, strong: 1, alive: true, value: Some(value) });
        self.allocs.len() - 1
    }

    /// Clone the payload of a live allocation (no scheduling point; callers
    /// hold or just took a strong reference). Returns `None` if freed — the
    /// corresponding bug has already been recorded by the refcount op.
    pub(crate) fn alloc_value(&self, alloc: usize) -> Option<Arc<dyn Any + Send + Sync>> {
        self.allocs[alloc].value.clone()
    }

    pub(crate) fn register_thread(&mut self, name: String, view: Vec<usize>) -> usize {
        self.threads.push(ThreadSlot { phase: Phase::Starting, view, name });
        self.threads.len() - 1
    }

    pub(crate) fn add_os_handle(&mut self, h: os_thread::JoinHandle<()>) {
        self.os_handles.push(h);
    }

    pub(crate) fn enabled(&self, op: &Op) -> bool {
        match op {
            Op::Lock { mutex } => self.mutexes[*mutex].locked_by.is_none(),
            Op::Join { target } => self.threads[*target].phase == Phase::Finished,
            _ => true,
        }
    }

    /// Number of store-history candidates a load of `loc` by `tid` has.
    pub(crate) fn load_arity(&self, tid: usize, op: &Op) -> usize {
        match op {
            Op::Load { loc, ord } if *ord != Ordering::SeqCst => {
                let latest = self.atomics[*loc].stores.len() - 1;
                let base = self.threads[tid].view.get(*loc).copied().unwrap_or(0);
                latest - base.min(latest) + 1
            }
            _ => 1,
        }
    }

    /// Map a relative choice (0 = newest candidate) to an absolute store
    /// index for the granted load.
    pub(crate) fn grant(&mut self, tid: usize, op: &Op, rel_choice: usize) {
        let abs = match op {
            Op::Load { loc, .. } => {
                let latest = self.atomics[*loc].stores.len() - 1;
                Some(latest - rel_choice)
            }
            _ => None,
        };
        self.granted = Some(tid);
        self.value_choice = abs;
    }

    fn join_view(&mut self, tid: usize, other: &[usize]) {
        let view = &mut self.threads[tid].view;
        if view.len() < other.len() {
            view.resize(other.len(), 0);
        }
        for (v, o) in view.iter_mut().zip(other) {
            *v = (*v).max(*o);
        }
    }

    fn execute(&mut self, me: usize, op: &Op, choice: Option<usize>) -> OpResult {
        self.steps += 1;
        if self.steps > self.max_steps && !self.poisoned {
            self.bug(
                BugKind::StepLimit,
                format!("execution exceeded {} scheduling points", self.max_steps),
            );
        }
        let teardown = self.poisoned;
        let name = self.threads[me].name.clone();
        let line = |s: String, inner: &mut Self| {
            if !teardown {
                inner.push_trace(format!("[{name}] {s}"));
            }
        };
        match op {
            Op::Start => {
                line("start".to_string(), self);
                OpResult { val: 0, ok: true }
            }
            Op::Load { loc, ord } => {
                let latest = self.atomics[*loc].stores.len() - 1;
                let base = self.threads[me].view.get(*loc).copied().unwrap_or(0);
                let j = match (ord, choice) {
                    (Ordering::SeqCst, _) | (_, None) => latest,
                    (_, Some(j)) => j.clamp(base.min(latest), latest),
                };
                let val = self.atomics[*loc].stores[j].val;
                self.ensure_view(*loc);
                self.threads[me].view[*loc] = j;
                if ord.acquires() {
                    if let Some(v) = self.atomics[*loc].stores[j].view.clone() {
                        self.join_view(me, &v);
                    }
                }
                let stale = if j < latest {
                    format!(" (stale: {} behind)", latest - j)
                } else {
                    String::new()
                };
                line(format!("{}.load({ord}) -> {val}{stale}", self.atomics[*loc].label), self);
                OpResult { val, ok: true }
            }
            Op::Store { loc, ord, val } => {
                self.ensure_view(*loc);
                let new_idx = self.atomics[*loc].stores.len();
                self.threads[me].view[*loc] = new_idx;
                let view = ord.releases().then(|| self.threads[me].view.clone());
                self.atomics[*loc].stores.push(StoreRec { val: *val, view });
                line(format!("{}.store({val}, {ord})", self.atomics[*loc].label), self);
                OpResult { val: *val, ok: true }
            }
            Op::Rmw { loc, ord, kind } => {
                // RMWs always read the newest store: per-location coherence
                // makes anything else a violated atomicity, and the
                // scheduler's serialization supplies the modification order.
                self.ensure_view(*loc);
                let latest = self.atomics[*loc].stores.len() - 1;
                let old = self.atomics[*loc].stores[latest].val;
                if ord.acquires() {
                    if let Some(v) = self.atomics[*loc].stores[latest].view.clone() {
                        self.join_view(me, &v);
                    }
                }
                let (new, ok, desc) = match kind {
                    RmwKind::FetchAdd(d) => (old.wrapping_add(*d), true, format!("fetch_add({d}")),
                    RmwKind::FetchSub(d) => (old.wrapping_sub(*d), true, format!("fetch_sub({d}")),
                    RmwKind::Swap(v) => (*v, true, format!("swap({v}")),
                    RmwKind::CompareExchange { expect, new } => {
                        let ok = old == *expect;
                        (
                            if ok { *new } else { old },
                            ok,
                            format!("compare_exchange({expect}, {new}"),
                        )
                    }
                };
                if ok {
                    let new_idx = self.atomics[*loc].stores.len();
                    self.threads[me].view[*loc] = new_idx;
                    let view = ord.releases().then(|| self.threads[me].view.clone());
                    self.atomics[*loc].stores.push(StoreRec { val: new, view });
                } else {
                    self.threads[me].view[*loc] = latest;
                }
                line(
                    format!(
                        "{}.{desc}, {ord}) -> {old}{}",
                        self.atomics[*loc].label,
                        if ok { "" } else { " [failed]" }
                    ),
                    self,
                );
                OpResult { val: old, ok }
            }
            Op::Lock { mutex } => {
                let m = &mut self.mutexes[*mutex];
                debug_assert!(teardown || m.locked_by.is_none());
                m.locked_by = Some(me);
                if let Some(v) = m.release_view.clone() {
                    self.join_view(me, &v);
                }
                line(format!("{}.lock()", self.mutexes[*mutex].label), self);
                OpResult { val: 0, ok: true }
            }
            Op::Unlock { mutex } => {
                let view = self.threads[me].view.clone();
                let m = &mut self.mutexes[*mutex];
                m.locked_by = None;
                m.release_view = Some(view);
                line(format!("{}.unlock()", self.mutexes[*mutex].label), self);
                OpResult { val: 0, ok: true }
            }
            Op::ArcIncr { alloc } => {
                let a = &mut self.allocs[*alloc];
                if !a.alive {
                    let label = a.label.clone();
                    self.bug(
                        BugKind::UseAfterFree,
                        format!("strong-count increment on freed allocation `{label}`"),
                    );
                    return OpResult { val: 0, ok: false };
                }
                a.strong += 1;
                let s = a.strong;
                line(format!("arc[{}].incr -> strong={s}", self.allocs[*alloc].label), self);
                OpResult { val: s as Value, ok: true }
            }
            Op::ArcDecr { alloc } => {
                let a = &mut self.allocs[*alloc];
                if !a.alive {
                    let label = a.label.clone();
                    self.bug(
                        BugKind::DoubleFree,
                        format!("strong-count decrement on freed allocation `{label}`"),
                    );
                    return OpResult { val: 0, ok: false };
                }
                a.strong -= 1;
                let s = a.strong;
                if s == 0 {
                    a.alive = false;
                    a.value = None;
                }
                let freed = if s == 0 { " [freed]" } else { "" };
                line(format!("arc[{}].decr -> strong={s}{freed}", self.allocs[*alloc].label), self);
                OpResult { val: s as Value, ok: true }
            }
            Op::ArcRead { alloc } => {
                let a = &self.allocs[*alloc];
                if !a.alive {
                    let label = a.label.clone();
                    self.bug(
                        BugKind::UseAfterFree,
                        format!("read through raw handle of freed allocation `{label}`"),
                    );
                    return OpResult { val: 0, ok: false };
                }
                line(format!("arc[{}].read", self.allocs[*alloc].label), self);
                OpResult { val: 0, ok: true }
            }
            Op::Join { target } => {
                line(format!("join({})", self.threads[*target].name), self);
                OpResult { val: 0, ok: true }
            }
        }
    }

    /// Leak oracle: every allocation must be freed by execution end.
    fn check_leaks(&mut self) {
        if !self.bugs.is_empty() || self.pruned {
            return;
        }
        let leaked: Vec<String> = self
            .allocs
            .iter()
            .filter(|a| a.alive)
            .map(|a| format!("`{}` (strong={})", a.label, a.strong))
            .collect();
        if !leaked.is_empty() {
            let msg = format!("allocations still live at execution end: {}", leaked.join(", "));
            self.bugs.push(Bug { kind: BugKind::Leak, message: msg.clone() });
            self.push_trace(format!("!! leak: {msg}"));
        }
    }
}

/// Record a fact observed in this execution; aggregated across the whole
/// exploration so tests can assert "this state is reachable in at least one
/// schedule" alongside per-execution invariants.
pub fn fact(msg: &str) {
    let (exec, _) = ctx();
    exec.with_state(|g| {
        g.facts.insert(msg.to_string());
    });
}

/// Spawn a model thread. Must be called from inside a checked execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = ctx();
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let exec2 = exec.clone();
    let tid = exec.with_state(|g| {
        let view = g.threads[me].view.clone();
        g.register_thread(format!("t{}", g.threads.len()), view)
    });
    let handle = os_thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || run_model_thread(&exec2, tid, f, &slot))
        .expect("failed to spawn model thread");
    exec.with_state(|g| g.add_os_handle(handle));
    JoinHandle { tid, result }
}

fn run_model_thread<T: Send + 'static>(
    exec: &Arc<ExecShared>,
    tid: usize,
    f: impl FnOnce() -> T,
    slot: &Mutex<Option<T>>,
) {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let out = panic::catch_unwind(AssertUnwindSafe(|| {
        exec.yield_op(tid, Op::Start);
        f()
    }));
    let mut g = exec.state.lock().unwrap();
    match out {
        Ok(v) => {
            *slot.lock().unwrap() = Some(v);
        }
        Err(payload) => {
            if !payload.is::<AbortToken>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                g.record_panic(tid, &msg);
            }
        }
    }
    g.threads[tid].phase = Phase::Finished;
    exec.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Handle to a model thread; `join` is itself a scheduling point and only
/// becomes enabled once the target thread finished.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> T {
        let (exec, me) = ctx();
        exec.yield_op(me, Op::Join { target: self.tid });
        match self.result.lock().unwrap().take() {
            Some(v) => v,
            // Target aborted or panicked; this execution is poisoned.
            None => panic::panic_any(AbortToken),
        }
    }
}

/// A scheduling decision taken by the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Grant thread `tid`.
    Thread(usize),
    /// Pick load candidate `k` (0 = newest visible store).
    Value(usize),
}

/// Strategy interface: the controller asks the chooser at every branch.
pub(crate) trait Chooser {
    /// Pick a thread among `enabled` (tid + pending op), or `None` to prune
    /// this execution as redundant. `last` is the previously granted thread.
    fn choose_thread(&mut self, enabled: &[(usize, Op)], last: Option<usize>) -> Option<usize>;
    /// Pick a load candidate among `arity` options (0 = newest).
    fn choose_value(&mut self, arity: usize) -> usize;
}

pub(crate) struct ExecResult {
    pub bugs: Vec<Bug>,
    pub facts: BTreeSet<String>,
    pub trace: Vec<String>,
    pub schedule: Vec<Decision>,
    pub pruned: bool,
}

/// Run one controlled execution of `scenario` under `chooser`.
pub(crate) fn run_one(
    scenario: &Arc<dyn Fn() + Send + Sync>,
    chooser: &mut dyn Chooser,
    max_steps: usize,
) -> ExecResult {
    let exec = Arc::new(ExecShared::new(max_steps));
    let slot: Arc<Mutex<Option<()>>> = Arc::new(Mutex::new(None));
    {
        let mut g = exec.state.lock().unwrap();
        g.register_thread("main".to_string(), Vec::new());
    }
    let exec2 = exec.clone();
    let scenario = scenario.clone();
    let main_handle = os_thread::Builder::new()
        .name("model-main".to_string())
        .spawn(move || run_model_thread(&exec2, 0, move || scenario(), &slot))
        .expect("failed to spawn model main thread");
    exec.with_state(|g| g.add_os_handle(main_handle));

    let mut schedule: Vec<Decision> = Vec::new();
    let mut last: Option<usize> = None;
    loop {
        let mut g = exec.state.lock().unwrap();
        // Wait for quiescence: the previous grant consumed (the grantee
        // flips itself to Running when it wakes — until then it still
        // looks parked) and nobody running or starting up.
        while g.granted.is_some()
            || g.threads.iter().any(|t| matches!(t.phase, Phase::Starting | Phase::Running))
        {
            g = exec.cv.wait(g).unwrap();
        }
        if g.poisoned {
            break;
        }
        let enabled: Vec<(usize, Op)> = g
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match &t.phase {
                Phase::Parked(op) if g.enabled(op) => Some((tid, op.clone())),
                _ => None,
            })
            .collect();
        let parked_any = g.threads.iter().any(|t| matches!(t.phase, Phase::Parked(_)));
        if enabled.is_empty() {
            if parked_any {
                let stuck: Vec<String> = g
                    .threads
                    .iter()
                    .filter(|t| matches!(t.phase, Phase::Parked(_)))
                    .map(|t| t.name.clone())
                    .collect();
                g.bug(
                    BugKind::Deadlock,
                    format!("no enabled thread; parked: {}", stuck.join(", ")),
                );
                exec.cv.notify_all();
            }
            break; // all finished, or deadlock poisoned
        }
        drop(g);
        let Some(tid) = chooser.choose_thread(&enabled, last) else {
            let mut g = exec.state.lock().unwrap();
            g.pruned = true;
            exec.poison(&mut g);
            drop(g);
            break;
        };
        schedule.push(Decision::Thread(tid));
        last = Some(tid);
        let op = enabled
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, op)| op.clone())
            .expect("chooser picked a non-enabled thread");
        let mut g = exec.state.lock().unwrap();
        let arity = g.load_arity(tid, &op);
        let rel = if arity > 1 {
            drop(g);
            let k = chooser.choose_value(arity).min(arity - 1);
            schedule.push(Decision::Value(k));
            g = exec.state.lock().unwrap();
            k
        } else {
            0
        };
        g.grant(tid, &op, rel);
        exec.cv.notify_all();
        drop(g);
    }

    // Teardown: wait for every model thread to finish, then run oracles.
    let handles = {
        let mut g = exec.state.lock().unwrap();
        while !g.threads.iter().all(|t| t.phase == Phase::Finished) {
            g = exec.cv.wait(g).unwrap();
        }
        g.check_leaks();
        std::mem::take(&mut g.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let g = exec.state.lock().unwrap();
    ExecResult {
        bugs: g.bugs.clone(),
        facts: g.facts.clone(),
        trace: g.trace.clone(),
        schedule,
        pruned: g.pruned,
    }
}
