//! Model reference counting: a safe reimplementation of the `Arc` raw-
//! pointer API (`into_raw` / `from_raw` / `increment_strong_count`) over a
//! table of tracked allocations, so the checker can catch use-after-free,
//! double-free, and leaks that the real API would turn into UB.
//!
//! A raw handle is just the allocation's table index ([`RawId`]); "freeing"
//! marks the entry dead and drops the payload. Refcount ops are scheduling
//! points, mirroring the atomic refcount traffic of the real `Arc`.

use std::any::Any;
use std::panic;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use crate::exec::{ctx, AbortToken, Op};

/// Raw strong-reference handle: the model analogue of `*const T` obtained
/// from `Arc::into_raw`. Plain `usize`, freely copyable and storable in a
/// `ModelAtomicUsize` — exactly how the RCU cell uses real raw pointers.
pub type RawId = usize;

/// Model analogue of `Arc<T>`: owns one strong reference to a tracked
/// allocation. Clone and drop are scheduling points (refcount RMWs).
pub struct ModelArc<T: Send + Sync + 'static> {
    id: RawId,
    data: Arc<T>,
    /// Set by `into_raw`: the strong reference moved into the raw handle,
    /// so the destructor must not decrement. A (host-level, not model)
    /// atomic only so `ModelArc` stays `Sync` and model structs can hold
    /// shared instances; it is never actually contended.
    defused: AtomicBool,
}

impl<T: Send + Sync + 'static> ModelArc<T> {
    /// Allocate. Not a scheduling point: a fresh allocation is unshared.
    pub fn new(label: &str, value: T) -> Self {
        let (exec, _) = ctx();
        let data = Arc::new(value);
        let erased: Arc<dyn Any + Send + Sync> = data.clone();
        let id = exec.with_state(|g| g.register_alloc(label.to_string(), erased));
        ModelArc { id, data, defused: AtomicBool::new(false) }
    }

    /// Borrow the payload. Safe without a scheduling point: holding a
    /// strong reference keeps the allocation alive (same as real `Arc`).
    pub fn value(&self) -> &T {
        &self.data
    }

    pub fn raw_id(&self) -> RawId {
        self.id
    }

    /// Model `Arc::into_raw`: transfer this strong reference into a raw
    /// handle without touching the refcount.
    pub fn into_raw(self) -> RawId {
        self.defused.store(true, Relaxed);
        self.id
    }

    /// Model `Arc::from_raw`: adopt the strong reference held by a raw
    /// handle. Like the real API this performs no refcount op; pairing it
    /// with a reference the handle does not own is the bug the checker
    /// exists to catch (via the later decrement or read).
    pub fn from_raw(id: RawId) -> Self {
        let (exec, _) = ctx();
        let erased = exec.with_state(|g| g.alloc_value(id));
        let Some(erased) = erased else {
            // Already freed: the refcount op that exposed this has recorded
            // the bug and poisoned the execution; unwind this thread.
            panic::panic_any(AbortToken);
        };
        let data = erased.downcast::<T>().expect("ModelArc::from_raw: payload type mismatch");
        ModelArc { id, data, defused: AtomicBool::new(false) }
    }
}

impl<T: Send + Sync + 'static> Clone for ModelArc<T> {
    fn clone(&self) -> Self {
        let (exec, me) = ctx();
        exec.yield_op(me, Op::ArcIncr { alloc: self.id });
        ModelArc { id: self.id, data: self.data.clone(), defused: AtomicBool::new(false) }
    }
}

impl<T: Send + Sync + 'static> Drop for ModelArc<T> {
    fn drop(&mut self) {
        if self.defused.load(Relaxed) {
            return;
        }
        let (exec, me) = ctx();
        exec.yield_op(me, Op::ArcDecr { alloc: self.id });
    }
}

/// Model `Arc::increment_strong_count(raw)`: mint a new strong reference
/// from a raw handle. Scheduling point; reports use-after-free if the
/// allocation was already reclaimed.
pub fn raw_increment_strong_count(id: RawId) {
    let (exec, me) = ctx();
    exec.yield_op(me, Op::ArcIncr { alloc: id });
}

/// Model of dereferencing a raw handle *without* owning a strong reference
/// (the hazard a buggy cache/memo commits). Scheduling point; reports
/// use-after-free if the allocation was reclaimed.
pub fn raw_read<T: Clone + Send + Sync + 'static>(id: RawId) -> T {
    let (exec, me) = ctx();
    exec.yield_op(me, Op::ArcRead { alloc: id });
    let erased = exec.with_state(|g| g.alloc_value(id));
    let Some(erased) = erased else {
        panic::panic_any(AbortToken);
    };
    erased.downcast_ref::<T>().expect("raw_read: payload type mismatch").clone()
}

/// Model of dropping the strong reference held by a raw handle without
/// reconstructing the `ModelArc` (used by retire lists). Scheduling point;
/// frees the allocation when the count hits zero.
pub fn raw_drop(id: RawId) {
    let (exec, me) = ctx();
    exec.yield_op(me, Op::ArcDecr { alloc: id });
}
