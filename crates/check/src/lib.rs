//! # speedybox-check: deterministic concurrency model checking
//!
//! A loom/shuttle-style stateless model checker, dependency-free, built to
//! verify the three load-bearing concurrent protocols in this repository
//! (the vendored arcswap RCU cell, the `FlowTable` slab, and classifier
//! generation publication — see DESIGN.md §14).
//!
//! ## How it works
//!
//! A *scenario* is a closure that builds model objects ([`ModelAtomicUsize`],
//! [`ModelArc`], [`ModelMutex`]) and spawns model threads with
//! [`spawn`]. Every operation on a model object is a scheduling point: the
//! checker runs exactly one thread between two points, so an execution is
//! fully described by the sequence of (thread, load-candidate) decisions —
//! a [`Schedule`] — and replays deterministically.
//!
//! The explorer enumerates schedules exhaustively up to a preemption bound
//! with sleep-set pruning ([`Config::exhaustive`]), or samples them with a
//! seeded random walk ([`Config::random`]). Oracles catch panics (failed
//! scenario assertions), use-after-free and double-free through the raw
//! refcount API, leaks, deadlocks, and runaway executions.
//!
//! ## What is modelled
//!
//! Atomics keep their full store history. `SeqCst` operations read the
//! newest store (scheduler order is their total order); `Acquire`/`Relaxed`
//! loads may read any store at or after the thread's per-location view,
//! and the choice is an explored branch — weakening an ordering therefore
//! *adds* behaviours the explorer will find. Release stores publish the
//! writer's view; acquire loads that read them join it. RMWs read the
//! newest store (coherence). This is a documented simplification of C11 —
//! no release sequences, no fences, and `SeqCst` is modelled stronger than
//! the standard requires — sound for bug *absence* only within these rules
//! (DESIGN.md §14 spells out the limits).

#![forbid(unsafe_code)]

mod arc;
mod exec;
mod explorer;
mod mutex;
mod rng;
mod schedule;
pub mod sync;

pub use arc::{raw_drop, raw_increment_strong_count, raw_read, ModelArc, RawId};
pub use exec::{fact, spawn, BugKind, Decision, JoinHandle, Ordering};
pub use explorer::{BugReport, Checker, Config, Mode, Outcome};
pub use mutex::{ModelMutex, ModelMutexGuard};
pub use schedule::Schedule;
pub use sync::{ModelAtomicBool, ModelAtomicU32, ModelAtomicU64, ModelAtomicUsize};

/// Check a scenario exhaustively with the given preemption bound and
/// panic on any violation; the common happy path for tests.
pub fn check_exhaustive<F>(name: &str, preemption_bound: usize, scenario: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let out = Checker::new(Config::exhaustive(preemption_bound)).check(name, scenario);
    out.assert_clean();
    out
}

/// Run a scenario once under a printed schedule, returning what was found.
pub fn replay<F>(name: &str, schedule: &str, scenario: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let parsed: Schedule = schedule.parse().expect("invalid schedule string");
    Checker::new(Config::replay(parsed)).check(name, scenario)
}
