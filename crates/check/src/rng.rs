//! SplitMix64: tiny deterministic PRNG for the random-walk strategy.
//! Vendoring `rand` into the checker would invert the trust relationship,
//! so the checker carries its own 10-line generator.

pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    #[allow(clippy::cast_possible_truncation)]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}
