//! Schedule exploration strategies and the public checking entry points.
//!
//! - **Exhaustive**: depth-first enumeration of every interleaving up to a
//!   bounded number of preemptions (context switches away from a thread
//!   that could still run), with DPOR-style sleep-set pruning of schedules
//!   that only commute independent operations. Load-value branches (stale
//!   reads admitted by weak orderings) are always fully enumerated.
//! - **Random**: seeded random walk, unbounded preemptions — the nightly
//!   tier for depths the exhaustive tier cannot afford.
//! - **Replay**: re-run one printed schedule deterministically.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::exec::{dependent, run_one, BugKind, Chooser, Decision, Op};
use crate::rng::SplitMix64;
use crate::schedule::Schedule;

#[derive(Clone, Debug)]
pub enum Mode {
    Exhaustive,
    Random { seed: u64, iterations: usize },
    Replay { schedule: Schedule },
}

#[derive(Clone, Debug)]
pub struct Config {
    pub mode: Mode,
    /// Max context switches away from a still-runnable thread, per
    /// execution. `None` = unbounded (full enumeration). Ignored by the
    /// random walk.
    pub preemption_bound: Option<usize>,
    /// DPOR-style sleep sets; independent-op permutations explored once.
    pub sleep_sets: bool,
    /// Per-execution scheduling-point budget (runaway guard).
    pub max_steps: usize,
    /// Exploration budget; exceeding it is reported in the outcome.
    pub max_executions: usize,
    /// Stop at the first bug (mutation twins only need one witness).
    pub stop_on_bug: bool,
}

impl Config {
    pub fn exhaustive(preemption_bound: usize) -> Self {
        Config {
            mode: Mode::Exhaustive,
            preemption_bound: Some(preemption_bound),
            sleep_sets: true,
            max_steps: 10_000,
            max_executions: 500_000,
            stop_on_bug: true,
        }
    }

    pub fn random(seed: u64, iterations: usize) -> Self {
        Config {
            mode: Mode::Random { seed, iterations },
            preemption_bound: None,
            sleep_sets: false,
            max_steps: 10_000,
            max_executions: iterations,
            stop_on_bug: true,
        }
    }

    pub fn replay(schedule: Schedule) -> Self {
        Config {
            mode: Mode::Replay { schedule },
            preemption_bound: None,
            sleep_sets: false,
            max_steps: 10_000,
            max_executions: 1,
            stop_on_bug: true,
        }
    }
}

/// One confirmed property violation with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct BugReport {
    pub kind: BugKind,
    pub message: String,
    /// Replayable decision sequence (`Mode::Replay`).
    pub schedule: String,
    /// Seed of the random-walk iteration that found it, if any.
    pub seed: Option<u64>,
    /// Human-readable op log of the failing execution.
    pub trace: Vec<String>,
}

/// Aggregate result of an exploration.
#[derive(Debug, Default)]
pub struct Outcome {
    pub name: String,
    /// Executions fully run (including the failing one).
    pub executions: usize,
    /// Executions cut off by sleep-set pruning (redundant interleavings).
    pub pruned: usize,
    pub bugs: Vec<BugReport>,
    /// Union of `check::fact` observations over all executions.
    pub facts: BTreeSet<String>,
    /// True if `max_executions` was exhausted before the DFS finished —
    /// the exploration is then *incomplete* and "no bugs" proves nothing.
    pub execution_cap_hit: bool,
}

impl Outcome {
    pub fn summary(&self) -> String {
        format!(
            "{}: {} executions (+{} pruned), {} bug(s), {} fact(s){}",
            self.name,
            self.executions,
            self.pruned,
            self.bugs.len(),
            self.facts.len(),
            if self.execution_cap_hit { " [EXECUTION CAP HIT — incomplete]" } else { "" }
        )
    }

    fn render_bug(b: &BugReport) -> String {
        let mut s = format!("  {}: {}\n  schedule: {}\n", b.kind, b.message, b.schedule);
        if let Some(seed) = b.seed {
            s.push_str(&format!("  seed: {seed}\n"));
        }
        s.push_str("  trace:\n");
        for line in &b.trace {
            s.push_str("    ");
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// Assert the exploration completed and found no violation.
    pub fn assert_clean(&self) {
        assert!(
            !self.execution_cap_hit,
            "{}: execution cap hit — exploration incomplete",
            self.name
        );
        if let Some(b) = self.bugs.first() {
            panic!(
                "{}: model check failed after {} executions\n{}",
                self.name,
                self.executions,
                Self::render_bug(b)
            );
        }
    }

    /// Assert a `check::fact` was observed in at least one schedule
    /// (reachability companion to the all-schedules invariants).
    pub fn assert_fact(&self, fact: &str) {
        assert!(
            self.facts.contains(fact),
            "{}: fact `{fact}` was never observed; saw: {:?}",
            self.name,
            self.facts
        );
    }

    /// Assert the checker caught a bug of the given kind (mutation twins).
    pub fn expect_bug(&self, kind: BugKind) -> &BugReport {
        match self.bugs.iter().find(|b| b.kind == kind) {
            Some(b) => b,
            None => panic!(
                "{}: expected a {kind} bug, found {:?} after {} executions",
                self.name,
                self.bugs.iter().map(|b| b.kind).collect::<Vec<_>>(),
                self.executions
            ),
        }
    }
}

/// Exploration driver for one scenario.
pub struct Checker {
    config: Config,
}

impl Checker {
    pub fn new(config: Config) -> Self {
        Checker { config }
    }

    pub fn check<F>(&self, name: &str, scenario: F) -> Outcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
        match self.config.mode.clone() {
            Mode::Exhaustive => self.run_exhaustive(name, &scenario),
            Mode::Random { seed, iterations } => self.run_random(name, &scenario, seed, iterations),
            Mode::Replay { schedule } => self.run_replay(name, &scenario, &schedule),
        }
    }

    fn run_exhaustive(&self, name: &str, scenario: &Arc<dyn Fn() + Send + Sync>) -> Outcome {
        let mut out = Outcome { name: name.to_string(), ..Outcome::default() };
        let mut dfs = DfsChooser::new(self.config.preemption_bound, self.config.sleep_sets);
        loop {
            dfs.begin_execution();
            let res = run_one(scenario, &mut dfs, self.config.max_steps);
            if res.pruned {
                out.pruned += 1;
            } else {
                out.executions += 1;
            }
            out.facts.extend(res.facts);
            if !res.bugs.is_empty() {
                let schedule = Schedule(res.schedule).to_string();
                for b in &res.bugs {
                    out.bugs.push(BugReport {
                        kind: b.kind,
                        message: b.message.clone(),
                        schedule: schedule.clone(),
                        seed: None,
                        trace: res.trace.clone(),
                    });
                }
                if self.config.stop_on_bug {
                    break;
                }
            }
            if !dfs.advance() {
                break;
            }
            if out.executions + out.pruned >= self.config.max_executions {
                out.execution_cap_hit = true;
                break;
            }
        }
        out
    }

    fn run_random(
        &self,
        name: &str,
        scenario: &Arc<dyn Fn() + Send + Sync>,
        seed: u64,
        iterations: usize,
    ) -> Outcome {
        let mut out = Outcome { name: name.to_string(), ..Outcome::default() };
        for i in 0..iterations {
            let iter_seed = seed.wrapping_add(i as u64);
            let mut chooser = RandomChooser { rng: SplitMix64::new(iter_seed) };
            let res = run_one(scenario, &mut chooser, self.config.max_steps);
            out.executions += 1;
            out.facts.extend(res.facts);
            if !res.bugs.is_empty() {
                let schedule = Schedule(res.schedule).to_string();
                for b in &res.bugs {
                    out.bugs.push(BugReport {
                        kind: b.kind,
                        message: b.message.clone(),
                        schedule: schedule.clone(),
                        seed: Some(iter_seed),
                        trace: res.trace.clone(),
                    });
                }
                if self.config.stop_on_bug {
                    break;
                }
            }
        }
        out
    }

    fn run_replay(
        &self,
        name: &str,
        scenario: &Arc<dyn Fn() + Send + Sync>,
        schedule: &Schedule,
    ) -> Outcome {
        let mut chooser = ReplayChooser { decisions: schedule.0.clone(), pos: 0 };
        let res = run_one(scenario, &mut chooser, self.config.max_steps);
        let mut out = Outcome { name: name.to_string(), executions: 1, ..Outcome::default() };
        out.facts.extend(res.facts);
        let replayed = Schedule(res.schedule).to_string();
        for b in &res.bugs {
            out.bugs.push(BugReport {
                kind: b.kind,
                message: b.message.clone(),
                schedule: replayed.clone(),
                seed: None,
                trace: res.trace.clone(),
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// DFS chooser: records a stack of decision nodes; replays the prefix, takes
// the first unexplored alternative at the deepest branch, and prunes via
// sleep sets and the preemption budget.

enum Rec {
    Thread(ThreadRec),
    Value(ValueRec),
}

struct ThreadRec {
    /// Enabled (tid, op) pairs as offered by the controller.
    enabled: Vec<(usize, Op)>,
    /// Sleep set on entry: tids whose exploration here is redundant.
    sleep: Vec<(usize, Op)>,
    /// Allowed choices (tids), continuation-first.
    options: Vec<usize>,
    /// Index into `options` of the choice taken on the current path.
    next: usize,
}

struct ValueRec {
    arity: usize,
    next: usize,
}

struct DfsChooser {
    bound: Option<usize>,
    sleep_sets: bool,
    stack: Vec<Rec>,
    /// Current depth within the stack during an execution.
    depth: usize,
    /// Sleep set to install at the next new thread node.
    sleep_cur: Vec<(usize, Op)>,
    /// Remaining preemption budget on the current path.
    budget: Option<usize>,
}

impl DfsChooser {
    fn new(bound: Option<usize>, sleep_sets: bool) -> Self {
        DfsChooser {
            bound,
            sleep_sets,
            stack: Vec::new(),
            depth: 0,
            sleep_cur: Vec::new(),
            budget: bound,
        }
    }

    fn begin_execution(&mut self) {
        self.depth = 0;
        self.sleep_cur.clear();
        self.budget = self.bound;
    }

    /// Move to the next unexplored branch; false when the space is done.
    fn advance(&mut self) -> bool {
        while let Some(rec) = self.stack.last_mut() {
            match rec {
                Rec::Thread(r) => {
                    r.next += 1;
                    if r.next < r.options.len() {
                        return true;
                    }
                }
                Rec::Value(r) => {
                    r.next += 1;
                    if r.next < r.arity {
                        return true;
                    }
                }
            }
            self.stack.pop();
        }
        false
    }

    /// Apply the bookkeeping shared by replayed and fresh choices: compute
    /// the child sleep set and charge the preemption budget.
    fn descend(&mut self, rec_idx: usize, chosen: usize, last: Option<usize>) {
        let Rec::Thread(r) = &self.stack[rec_idx] else {
            unreachable!("descend on a value record");
        };
        let chosen_op = r
            .enabled
            .iter()
            .find(|(t, _)| *t == chosen)
            .map(|(_, op)| op.clone())
            .expect("chosen tid not in enabled set");
        if self.sleep_sets {
            // Sleep for the child: everything asleep here, plus the
            // siblings already explored, minus whatever depends on the op
            // we are about to execute (those become meaningful again).
            let mut pool: Vec<(usize, Op)> = r.sleep.clone();
            for &t in &r.options[..r.next] {
                if let Some((_, op)) = r.enabled.iter().find(|(et, _)| *et == t) {
                    pool.push((t, op.clone()));
                }
            }
            pool.retain(|(t, op)| *t != chosen && !dependent(op, &chosen_op));
            self.sleep_cur = pool;
        }
        if let (Some(b), Some(l)) = (self.budget, last) {
            let last_enabled = r.enabled.iter().any(|(t, _)| *t == l);
            if last_enabled && chosen != l {
                self.budget = Some(b.saturating_sub(1));
            }
        }
        self.depth += 1;
    }
}

impl Chooser for DfsChooser {
    fn choose_thread(&mut self, enabled: &[(usize, Op)], last: Option<usize>) -> Option<usize> {
        if self.depth < self.stack.len() {
            // Replay the recorded prefix.
            let idx = self.depth;
            let chosen = {
                let Rec::Thread(r) = &self.stack[idx] else {
                    unreachable!("decision kind mismatch on replay (thread)");
                };
                debug_assert_eq!(r.enabled, enabled, "non-deterministic scenario");
                r.options[r.next]
            };
            self.descend(idx, chosen, last);
            return Some(chosen);
        }
        // Fresh node.
        let sleep: Vec<(usize, Op)> = if self.sleep_sets {
            std::mem::take(&mut self.sleep_cur)
                .into_iter()
                .filter(|(t, _)| enabled.iter().any(|(et, _)| et == t))
                .collect()
        } else {
            Vec::new()
        };
        let mut options: Vec<usize> = enabled
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| !sleep.iter().any(|(st, _)| st == t))
            .collect();
        // Preemption budget exhausted: only continuing `last` stays free.
        if let (Some(0), Some(l)) = (self.budget, last) {
            if enabled.iter().any(|(t, _)| *t == l) {
                options.retain(|&t| t == l);
            }
        }
        // Continuation-first keeps the first path preemption-free.
        if let Some(l) = last {
            options.sort_by_key(|&t| (t != l, t));
        }
        if options.is_empty() {
            // Every choice is asleep (or over budget): this subtree is
            // covered by a sibling; prune.
            return None;
        }
        self.stack.push(Rec::Thread(ThreadRec {
            enabled: enabled.to_vec(),
            sleep,
            options,
            next: 0,
        }));
        let idx = self.stack.len() - 1;
        let Rec::Thread(r) = &self.stack[idx] else {
            unreachable!();
        };
        let chosen = r.options[0];
        self.descend(idx, chosen, last);
        Some(chosen)
    }

    fn choose_value(&mut self, arity: usize) -> usize {
        if self.depth < self.stack.len() {
            let Rec::Value(r) = &self.stack[self.depth] else {
                unreachable!("decision kind mismatch on replay (value)");
            };
            debug_assert_eq!(r.arity, arity, "non-deterministic scenario");
            let k = r.next;
            self.depth += 1;
            return k;
        }
        self.stack.push(Rec::Value(ValueRec { arity, next: 0 }));
        self.depth += 1;
        0
    }
}

struct RandomChooser {
    rng: SplitMix64,
}

impl Chooser for RandomChooser {
    fn choose_thread(&mut self, enabled: &[(usize, Op)], _last: Option<usize>) -> Option<usize> {
        Some(enabled[self.rng.below(enabled.len())].0)
    }

    fn choose_value(&mut self, arity: usize) -> usize {
        self.rng.below(arity)
    }
}

struct ReplayChooser {
    decisions: Vec<Decision>,
    pos: usize,
}

impl Chooser for ReplayChooser {
    fn choose_thread(&mut self, enabled: &[(usize, Op)], _last: Option<usize>) -> Option<usize> {
        let want = match self.decisions.get(self.pos) {
            Some(Decision::Thread(t)) => {
                self.pos += 1;
                Some(*t)
            }
            _ => None,
        };
        match want {
            Some(t) if enabled.iter().any(|(et, _)| *et == t) => Some(t),
            // Schedule exhausted or diverged: fall back to the first
            // enabled thread so the execution still completes.
            _ => Some(enabled[0].0),
        }
    }

    fn choose_value(&mut self, arity: usize) -> usize {
        match self.decisions.get(self.pos) {
            Some(Decision::Value(k)) => {
                self.pos += 1;
                (*k).min(arity - 1)
            }
            _ => 0,
        }
    }
}
