//! Printable, replayable schedules. A schedule is the exact decision
//! sequence of one execution: `t<tid>` grants a thread, `v<k>` picks load
//! candidate `k` (0 = newest visible store). `"t0.t1.v1.t0"` replays
//! deterministically via [`crate::Mode::Replay`].

use std::fmt;
use std::str::FromStr;

use crate::exec::Decision;

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<Decision>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            match d {
                Decision::Thread(t) => write!(f, "t{t}")?,
                Decision::Value(k) => write!(f, "v{k}")?,
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
pub struct ScheduleParseError(pub String);

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token `{}`", self.0)
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for Schedule {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = Vec::new();
        for tok in s.split('.').filter(|t| !t.is_empty()) {
            let (kind, num) = tok.split_at(1);
            let n: usize = num.parse().map_err(|_| ScheduleParseError(tok.to_string()))?;
            match kind {
                "t" => out.push(Decision::Thread(n)),
                "v" => out.push(Decision::Value(n)),
                _ => return Err(ScheduleParseError(tok.to_string())),
            }
        }
        Ok(Schedule(out))
    }
}
