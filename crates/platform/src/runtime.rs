//! The SpeedyBox runtime: classifier + Global MAT + instrumentation,
//! shared by both execution environments.
//!
//! The environment-specific parts (module hops vs. ring hops, pipelined vs.
//! run-to-completion rate) live in [`crate::bess`] and [`crate::onvm`];
//! everything about steering, recording, consolidation and fast-path
//! execution is here.

use std::sync::Arc;

use speedybox_mat::parallel::schedule_latency;
use speedybox_mat::{
    AdmissionPolicy, EventTable, GlobalMat, LocalMat, NfId, NfInstrument, OpCounter, PacketClass,
    PacketClassifier, FID_SPACE,
};
use speedybox_nf::{Nf, NfContext, NfVerdict};
use speedybox_packet::{Fid, Packet};
use speedybox_telemetry::Telemetry;

use crate::cycles::CycleModel;

/// Which SpeedyBox optimizations are active — the Fig 7 ablation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SboxConfig {
    /// Consolidate header actions into one (R1-R3 elimination). When off,
    /// the fast path replays each NF's recorded header actions one by one,
    /// paying per-NF parse + checksum costs.
    pub consolidate_ha: bool,
    /// Execute state-function batches on the Table I parallel schedule.
    /// When off, batches run strictly sequentially.
    pub parallelize_sf: bool,
    /// Use the paper's §III initial-packet definition: TCP handshake
    /// packets traverse the original chain without recording, and the
    /// first post-handshake packet records the flow's rule. Off by
    /// default.
    pub handshake_aware: bool,
    /// Fast-path batch size: environments classify and process packets in
    /// groups of this many, amortizing one table-lock acquisition per
    /// shard per batch. `1` (the default) is the per-packet path; results
    /// are identical at any batch size — only lock traffic changes.
    pub batch_size: usize,
    /// Flow/rule table shard count for the classifier and the Global MAT
    /// (rounded up to a power of two). Sharding never changes results —
    /// only lock granularity under concurrency.
    pub shards: usize,
    /// Execute consolidated header actions as compiled micro-op programs
    /// (default). When off (`--interpreted`), the fast path walks the
    /// [`ConsolidatedAction`](speedybox_mat::ConsolidatedAction) vectors
    /// per packet instead — same packet bytes, higher per-packet cost.
    pub compiled: bool,
    /// Number of symmetric run-to-completion workers (rounded up to a
    /// power of two). Each worker owns the FID slice
    /// `fid & (workers - 1) == worker_index` (RSS-style steering) and
    /// drives classify → consolidated-apply → telemetry to completion for
    /// its slice of every batch. Per-flow packet order is preserved (same
    /// flow → same worker, slice order within the worker), so results are
    /// identical at any worker count — only the work partition changes.
    /// `1` (the default) is the single-path mode.
    pub workers: usize,
    /// Bound on live flow-table entries (classifier) and installed rules
    /// (Global MAT). `0` means unbounded; the default is the full 20-bit
    /// FID space — one slot per possible FID, i.e. never full in practice.
    /// When the classifier is full, [`SboxConfig::admission`] decides the
    /// newcomer's fate; a capacity eviction tears the victim's state down
    /// everywhere (classifier, Global MAT, Local MATs, Event Table).
    pub max_flows: usize,
    /// Idle-flow timeout in classifier clock ticks (one tick per
    /// classified packet). Flows with no traffic for more than this many
    /// ticks are reclaimed at batch boundaries. `0` (the default)
    /// disables timeout eviction — flows are reclaimed only by FIN/RST
    /// teardown or capacity pressure.
    pub idle_timeout: u64,
    /// What happens to a *new* flow when the table is at `max_flows`:
    /// evict the least-recently-seen flow to make room (default), or
    /// reject the newcomer (it rides the original chain, uninstrumented).
    pub admission: AdmissionPolicy,
    /// Retention bound of the chain's packet-buffer pool (idle buffers the
    /// depot keeps for reuse). Pooling never changes processing results —
    /// only where buffers come from; an exhausted pool falls back to heap
    /// allocation, counted in the `pool_misses` telemetry counter.
    pub pool_buffers: usize,
    /// Chain-consistent checkpoint interval in packets for the NF
    /// crash/restart supervisor. `0` (the default) disables supervision —
    /// no snapshots are taken, no in-flight log is kept, and the data path
    /// stays allocation-free. When non-zero, every NF's state is
    /// checkpointed at one packet boundary every this-many packets (or
    /// sooner if the in-flight log hits its bound), and `kill_nf` can roll
    /// the chain back to the checkpoint and replay the log.
    pub checkpoint_interval: u64,
}

impl Default for SboxConfig {
    fn default() -> Self {
        Self {
            consolidate_ha: true,
            parallelize_sf: true,
            handshake_aware: false,
            batch_size: 1,
            shards: speedybox_mat::classifier::DEFAULT_CLASSIFIER_SHARDS,
            compiled: true,
            workers: 1,
            max_flows: FID_SPACE,
            idle_timeout: 0,
            admission: AdmissionPolicy::EvictOldest,
            pool_buffers: speedybox_packet::DEFAULT_POOL_BUFFERS,
            checkpoint_interval: 0,
        }
    }
}

impl SboxConfig {
    /// The effective worker count: at least 1, rounded up to a power of
    /// two so a worker's FID slice is a mask.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.max(1).next_power_of_two()
    }
}

/// The per-chain SpeedyBox state.
#[derive(Debug)]
pub struct SpeedyBox {
    /// Packet classifier (FID assignment + steering). Shared (`Arc`) so
    /// concurrent harnesses — e.g. the simulation fault plan's install/
    /// remove churn thread — can hold a handle while the owning
    /// environment keeps processing packets.
    pub classifier: Arc<PacketClassifier>,
    /// Consolidated fast-path rules. Shared for the same reason as
    /// [`SpeedyBox::classifier`].
    pub global: Arc<GlobalMat>,
    /// One instrumentation handle per NF, chain order.
    pub instruments: Vec<NfInstrument>,
    /// Active optimizations.
    pub config: SboxConfig,
    /// Live telemetry hub. The classifier, Global MAT and Event Table all
    /// sink into this same instance; environments additionally record
    /// per-packet outcomes (path mix, latency, op totals) into it.
    pub telemetry: Arc<Telemetry>,
}

impl SpeedyBox {
    /// Creates SpeedyBox state for a chain of `nf_count` NFs.
    #[must_use]
    pub fn new(nf_count: usize, config: SboxConfig) -> Self {
        let locals: Vec<Arc<LocalMat>> =
            (0..nf_count).map(|i| Arc::new(LocalMat::new(NfId::new(i)))).collect();
        let telemetry = Arc::new(Telemetry::new(config.shards));
        let global = Arc::new(
            GlobalMat::with_limits(locals.clone(), config.shards, config.max_flows)
                .with_telemetry(Arc::clone(&telemetry))
                .with_compiled(config.compiled),
        );
        let events: Arc<EventTable> = Arc::clone(global.events());
        let instruments =
            locals.iter().map(|l| NfInstrument::new(Arc::clone(l), Arc::clone(&events))).collect();
        let mut classifier =
            PacketClassifier::with_limits(config.shards, config.max_flows, config.admission)
                .with_telemetry(Arc::clone(&telemetry));
        // Capacity evictions must not strand fast-path state: the hook
        // tears the victim down across the Global MAT, Local MATs and
        // Event Table, mirroring FIN teardown (NFs are not notified — the
        // flow did not close; its state simply stops being accelerated).
        classifier = classifier.with_evictor({
            let global = Arc::clone(&global);
            Arc::new(move |fid| global.remove_flow(fid))
        });
        if config.handshake_aware {
            classifier = classifier.handshake_aware();
        }
        Self { classifier: Arc::new(classifier), global, instruments, config, telemetry }
    }

    /// Switches the fast path between compiled and interpreted
    /// header-action execution mid-run (the simulation harness's
    /// `flip@N` fault). Safe at any packet boundary: every installed rule
    /// carries both execution forms and they produce identical bytes.
    pub fn set_compiled(&mut self, compiled: bool) {
        self.config.compiled = compiled;
        self.global.set_compiled(compiled);
    }

    /// Tears down a closed flow across all tables.
    pub fn remove_flow(&self, fid: Fid) {
        self.global.remove_flow(fid);
        self.classifier.remove_flow(fid);
    }

    /// Expires flows idle for more than `max_idle` classifier ticks and
    /// tears down their rules everywhere. Returns how many flows were
    /// reclaimed. Call periodically (e.g. every few thousand packets) to
    /// bound table growth under UDP or half-open TCP traffic.
    pub fn expire_idle_flows(&self, max_idle: u64) -> usize {
        let expired = self.classifier.expire_idle(max_idle);
        for fid in &expired {
            self.global.remove_flow(*fid);
        }
        expired.len()
    }

    /// Force-evicts the `k` least-recently-seen flows with full teardown
    /// (the sim harness's `evict@N` fault): classifier entry, Global MAT
    /// rule, Local MATs and Event Table — exactly what capacity-pressure
    /// LRU eviction does. Evicted flows re-record on their next packet,
    /// so packet results are unchanged. Returns how many flows were
    /// evicted.
    pub fn force_evict_flows(&self, k: usize) -> usize {
        let victims = self.classifier.evict_oldest(k);
        for fid in &victims {
            self.global.remove_flow(*fid);
        }
        victims.len()
    }

    /// Batch-boundary idle-eviction tick: when [`SboxConfig::idle_timeout`]
    /// is enabled and the classifier clock has passed the earliest
    /// possible expiry deadline, sweeps idle flows out of every table.
    /// O(1) when nothing can be due (one atomic clock read plus the
    /// wheel's cached lower bound), so environments call it once per
    /// batch unconditionally. Returns how many flows were reclaimed.
    pub fn tick_idle_eviction(&self) -> usize {
        let max_idle = self.config.idle_timeout;
        if max_idle == 0 {
            return 0;
        }
        // An entry last touched at tick `t` expires once `now - t >
        // max_idle`; `next_expiry_due` lower-bounds the earliest touch
        // deadline, so nothing can be due before `due + max_idle + 1`.
        let now = self.classifier.clock();
        if now <= self.classifier.next_expiry_due().saturating_add(max_idle) {
            return 0;
        }
        self.expire_idle_flows(max_idle)
    }

    /// Retired (replaced but not yet reclaimed) table generations across
    /// the Global MAT and the classifier. Bounded by rule-churn frequency;
    /// see [`SpeedyBox::collect_generations`].
    #[must_use]
    pub fn pending_generations(&self) -> usize {
        self.global.pending_generations() + self.classifier.pending_generations()
    }

    /// Forces a reclamation pass over retired table generations (the sim
    /// harness's `retire@N` fault); returns how many were freed. Purely a
    /// memory operation — never changes processing results.
    pub fn collect_generations(&self) -> usize {
        self.global.collect_generations() + self.classifier.collect_generations()
    }
}

/// Result of a slow-path (or baseline) traversal.
#[derive(Debug)]
pub struct SlowPathResult {
    /// Whether the packet survived the chain.
    pub survived: bool,
    /// Model cycles spent inside each NF (instrumentation included), in
    /// chain order; NFs after a drop have zero.
    pub per_nf_cycles: Vec<u64>,
    /// Total operations performed.
    pub ops: OpCounter,
}

/// Runs a packet through the original chain. With `instruments` present the
/// NFs record their per-flow behaviour (SpeedyBox slow path); without, this
/// is the paper's uninstrumented baseline.
pub fn traverse_chain(
    nfs: &mut [Box<dyn Nf>],
    instruments: Option<&[NfInstrument]>,
    packet: &mut Packet,
    model: &CycleModel,
) -> SlowPathResult {
    let mut per_nf_cycles = Vec::with_capacity(nfs.len());
    let mut total_ops = OpCounter::default();
    let mut survived = true;
    for (i, nf) in nfs.iter_mut().enumerate() {
        if !survived {
            per_nf_cycles.push(0);
            continue;
        }
        let mut ops = OpCounter::default();
        let verdict = match instruments {
            Some(insts) => {
                let mut ctx = NfContext::instrumented(&insts[i], &mut ops);
                nf.process(packet, &mut ctx)
            }
            None => {
                let mut ctx = NfContext::baseline(&mut ops);
                nf.process(packet, &mut ctx)
            }
        };
        per_nf_cycles.push(model.cycles(&ops));
        total_ops.merge(&ops);
        survived = verdict.survives();
    }
    SlowPathResult { survived, per_nf_cycles, ops: total_ops }
}

/// Result of a fast-path execution. Per-batch cycle attribution lives in
/// the caller's [`FastPathScratch`] (`attr`), not here, so the result
/// itself is allocation-free.
#[derive(Debug)]
pub struct FastPathResult {
    /// Whether the packet survived (false = early drop).
    pub survived: bool,
    /// Total CPU work in model cycles.
    pub work_cycles: u64,
    /// Wall latency in model cycles (parallel schedule applied).
    pub latency_cycles: u64,
    /// Operations performed.
    pub ops: OpCounter,
}

/// Reusable per-worker storage for [`fast_path`] /
/// [`fast_path_cached`]: once warm, fast-path execution allocates
/// nothing per packet.
#[derive(Debug, Default)]
pub struct FastPathScratch {
    /// Per-batch modeled cycles in schedule order (internal).
    cycles: Vec<u64>,
    /// Work per state-function batch `(owning NF, cycles)` for the packet
    /// most recently executed — pipelined environments read this to
    /// attribute batch execution to worker cores. Empty after an early
    /// drop or a fast-path miss.
    pub attr: Vec<(NfId, u64)>,
}

/// Executes the consolidated fast path for a subsequent packet.
///
/// Mirrors Fig 1's subsequent-packet walkthrough: Event Table check (inside
/// `GlobalMat::prepare`), consolidated header action, then state-function
/// batches on the parallel schedule. Returns `None` if no rule is installed
/// (the caller should fall back to the slow path).
pub fn fast_path(
    sbox: &SpeedyBox,
    packet: &mut Packet,
    fid: Fid,
    model: &CycleModel,
    scratch: &mut FastPathScratch,
) -> Option<FastPathResult> {
    // Step 1: event check + rule lookup (re-consolidates if events fired).
    let mut ctl_ops = OpCounter::default();
    scratch.attr.clear();
    let rule = sbox.global.prepare(fid, &mut ctl_ops)?;
    Some(fast_path_execute(sbox, packet, fid, model, &rule, ctl_ops, scratch))
}

/// [`fast_path`] against a prefetched rule handle (see
/// [`GlobalMat::prepare_cached`](speedybox_mat::GlobalMat::prepare_cached)):
/// identical results and op accounting, but step 1's table lookups are
/// served from `cached`. Returns the result plus whether an event fired —
/// a fired event re-consolidates the rule, so the caller must treat its
/// cache entry for this FID as stale afterwards.
pub fn fast_path_cached(
    sbox: &SpeedyBox,
    packet: &mut Packet,
    fid: Fid,
    model: &CycleModel,
    cached: Option<&Arc<speedybox_mat::GlobalRule>>,
    scratch: &mut FastPathScratch,
) -> (Option<FastPathResult>, bool) {
    let mut ctl_ops = OpCounter::default();
    scratch.attr.clear();
    let (rule, fired) = sbox.global.prepare_cached(fid, cached, &mut ctl_ops);
    match rule {
        Some(rule) => {
            (Some(fast_path_execute(sbox, packet, fid, model, &rule, ctl_ops, scratch)), fired)
        }
        None => (None, fired),
    }
}

/// Steps 2-3 of the fast path, shared by the locked and cached step-1
/// variants.
#[allow(clippy::too_many_arguments)]
fn fast_path_execute(
    sbox: &SpeedyBox,
    packet: &mut Packet,
    fid: Fid,
    model: &CycleModel,
    rule: &speedybox_mat::GlobalRule,
    ctl_ops: OpCounter,
    scratch: &mut FastPathScratch,
) -> FastPathResult {
    let ctl_cycles = model.cycles(&ctl_ops);

    // Step 2: header actions — compiled micro-op program by default, the
    // interpreted walk under `--interpreted`, per-NF replay in the
    // consolidation ablation.
    let mut ha_ops = OpCounter::default();
    let cell = sbox.telemetry.shard(fid.index() as u64);
    let survived = if sbox.config.consolidate_ha {
        if sbox.config.compiled {
            cell.add_compiled_hits(1);
            rule.compiled.run(packet, &mut ha_ops).unwrap_or(false)
        } else {
            cell.add_compiled_fallbacks(1);
            rule.consolidated.apply(packet, &mut ha_ops).unwrap_or(false)
        }
    } else {
        cell.add_compiled_fallbacks(1);
        // Ablation: replay each NF's recorded header actions sequentially,
        // paying the per-NF re-parse the consolidation would have removed.
        let mut alive = true;
        for local in sbox.global.locals() {
            if !alive {
                break;
            }
            let Some(lr) = local.rule(fid) else { continue };
            for action in &lr.header_actions {
                ha_ops.parses += 1;
                if !action.apply(packet, &mut ha_ops).unwrap_or(false) {
                    alive = false;
                    break;
                }
            }
        }
        alive
    };
    let ha_cycles = model.cycles(&ha_ops);
    if !survived {
        // Early drop: short-circuits before SF dispatch and the fixed
        // forward overhead.
        let mut ops = ctl_ops;
        ops.merge(&ha_ops);
        let cycles = ctl_cycles + ha_cycles;
        return FastPathResult {
            survived: false,
            work_cycles: cycles,
            latency_cycles: cycles,
            ops,
        };
    }

    // Step 3: state-function batches, costed per batch so the Table I
    // schedule's wall latency (max per wave) can be modeled.
    scratch.cycles.clear();
    let mut sf_ops = OpCounter::default();
    for batch in &rule.batches {
        let mut ops = OpCounter::default();
        batch.execute(packet, fid, &mut ops);
        scratch.cycles.push(model.cycles(&ops));
        sf_ops.merge(&ops);
    }
    let sf_work: u64 = scratch.cycles.iter().sum();
    let sf_latency = if sbox.config.parallelize_sf {
        schedule_latency(&rule.schedule, &scratch.cycles)
    } else {
        sf_work
    };

    // Compiled dispatch is straight-line: its fixed forward overhead
    // undercuts the interpreted executor's.
    let fixed = if sbox.config.consolidate_ha && sbox.config.compiled {
        model.compiled_forward_fixed
    } else {
        model.fastpath_forward_fixed
    };
    let mut ops = ctl_ops;
    ops.merge(&ha_ops);
    ops.merge(&sf_ops);
    scratch.attr.extend(rule.batches.iter().zip(&scratch.cycles).map(|(b, &c)| (b.nf, c)));
    FastPathResult {
        survived: true,
        work_cycles: ctl_cycles + ha_cycles + sf_work + fixed,
        latency_cycles: ctl_cycles + ha_cycles + sf_latency + fixed,
        ops,
    }
}

/// Classifies a packet under SpeedyBox, returning the assigned FID, the
/// steering decision, and whether this packet closes its flow.
pub fn classify(
    sbox: &SpeedyBox,
    packet: &mut Packet,
    ops: &mut OpCounter,
) -> Result<(Fid, PacketClass, bool), speedybox_packet::PacketError> {
    let c = sbox.classifier.classify(packet, ops)?;
    Ok((c.fid, c.class, c.closes_flow))
}

/// Classifies a batch of packets under SpeedyBox with one shard-lock
/// acquisition per touched shard (see
/// [`PacketClassifier::classify_batch`]). Per-packet results and op counts
/// are identical to calling [`classify`] in slice order. Flow-closing
/// packets have their *classifier* entry removed inline; batch callers
/// tear down only the Global MAT side afterwards.
pub fn classify_batch(
    sbox: &SpeedyBox,
    packets: &mut [Packet],
    ops: &mut [OpCounter],
) -> Vec<Result<speedybox_mat::Classification, speedybox_packet::PacketError>> {
    sbox.classifier.classify_batch(packets, ops)
}

/// Notifies all NFs that a flow closed.
pub fn notify_flow_closed(nfs: &mut [Box<dyn Nf>], fid: Fid) {
    for nf in nfs {
        nf.flow_closed(fid);
    }
}

/// Attaches an ingress FID for baseline runs (both environments tag packets
/// at ingress so NF per-flow state is keyed identically with and without
/// SpeedyBox; without SpeedyBox there is no steering). Cost-free: this is
/// bookkeeping of the harness, not part of the modeled baseline data path
/// (each NF already pays its own parse).
pub fn tag_ingress(packet: &mut Packet, ops: &mut OpCounter) {
    let _ = ops;
    if let Ok(t) = packet.five_tuple() {
        packet.set_fid(t.fid());
    }
}

/// Re-exported verdict check used by environments.
#[must_use]
pub fn survives(verdict: NfVerdict) -> bool {
    verdict.survives()
}

#[cfg(test)]
mod tests {
    use speedybox_mat::HeaderAction;
    use speedybox_nf::synthetic::SyntheticNf;
    use speedybox_packet::{HeaderField, PacketBuilder};

    use super::*;

    fn chain() -> Vec<Box<dyn Nf>> {
        vec![
            Box::new(
                SyntheticNf::forward("a")
                    .with_header_action(HeaderAction::modify(HeaderField::DstPort, 1111u16)),
            ),
            Box::new(
                SyntheticNf::forward("b")
                    .with_header_action(HeaderAction::modify(HeaderField::DstPort, 2222u16)),
            ),
        ]
    }

    fn packet(src_port: u16) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src(format!("10.0.0.1:{src_port}").parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"x")
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn slow_path_records_and_fast_path_replays() {
        let model = CycleModel::new();
        let sbox = SpeedyBox::new(2, SboxConfig::default());
        let mut nfs = chain();
        let mut initial = packet(1000);
        let fid = initial.fid().unwrap();
        let res = traverse_chain(&mut nfs, Some(&sbox.instruments), &mut initial, &model);
        assert!(res.survived);
        assert_eq!(res.per_nf_cycles.len(), 2);
        let mut install_ops = OpCounter::default();
        sbox.global.install(fid, &mut install_ops);

        let mut sub = packet(1000);
        let mut scratch = FastPathScratch::default();
        let out = fast_path(&sbox, &mut sub, fid, &model, &mut scratch).unwrap();
        assert!(out.survived);
        // Latter NF's modify wins on the fast path, same as sequential.
        assert_eq!(sub.get_field(HeaderField::DstPort).unwrap().as_port(), 2222);
    }

    #[test]
    fn fast_path_without_rule_is_none() {
        let model = CycleModel::new();
        let sbox = SpeedyBox::new(1, SboxConfig::default());
        let mut p = packet(1000);
        let mut scratch = FastPathScratch::default();
        assert!(fast_path(&sbox, &mut p, Fid::new(7), &model, &mut scratch).is_none());
    }

    #[test]
    fn ha_ablation_costs_more() {
        let model = CycleModel::new();
        let mut nfs = chain();

        let consolidated = SpeedyBox::new(2, SboxConfig::default());
        let mut initial = packet(1000);
        let fid = initial.fid().unwrap();
        traverse_chain(&mut nfs, Some(&consolidated.instruments), &mut initial, &model);
        let mut ops = OpCounter::default();
        consolidated.global.install(fid, &mut ops);
        let mut scratch = FastPathScratch::default();
        let fast = fast_path(&consolidated, &mut packet(1000), fid, &model, &mut scratch).unwrap();

        let unconsolidated = SpeedyBox::new(
            2,
            SboxConfig { consolidate_ha: false, parallelize_sf: true, ..SboxConfig::default() },
        );
        let mut nfs2 = chain();
        let mut initial2 = packet(1000);
        traverse_chain(&mut nfs2, Some(&unconsolidated.instruments), &mut initial2, &model);
        let mut ops2 = OpCounter::default();
        unconsolidated.global.install(fid, &mut ops2);
        let slow =
            fast_path(&unconsolidated, &mut packet(1000), fid, &model, &mut scratch).unwrap();

        assert!(
            slow.work_cycles > fast.work_cycles,
            "per-NF replay ({}) must cost more than consolidated ({})",
            slow.work_cycles,
            fast.work_cycles
        );
        // Both produce the same packet bytes.
        let mut a = packet(1000);
        let mut b = packet(1000);
        fast_path(&consolidated, &mut a, fid, &model, &mut scratch).unwrap();
        fast_path(&unconsolidated, &mut b, fid, &model, &mut scratch).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn drop_rule_short_circuits_fast_path() {
        let model = CycleModel::new();
        let sbox = SpeedyBox::new(1, SboxConfig::default());
        let mut nfs: Vec<Box<dyn Nf>> =
            vec![Box::new(SyntheticNf::forward("d").with_header_action(HeaderAction::Drop))];
        let mut initial = packet(1000);
        let fid = initial.fid().unwrap();
        let res = traverse_chain(&mut nfs, Some(&sbox.instruments), &mut initial, &model);
        assert!(!res.survived);
        let mut ops = OpCounter::default();
        sbox.global.install(fid, &mut ops);
        let mut scratch = FastPathScratch::default();
        let out = fast_path(&sbox, &mut packet(1000), fid, &model, &mut scratch).unwrap();
        assert!(!out.survived);
        assert!(scratch.attr.is_empty(), "early drop leaves no batch attribution");
        // Early drop must be cheaper than the forward fixed overhead path.
        assert!(out.work_cycles < model.mat_lookup + model.fastpath_forward_fixed + 500);
    }

    #[test]
    fn sf_parallelism_reduces_latency_not_work() {
        use speedybox_mat::state_fn::PayloadAccess;
        use speedybox_nf::synthetic::SyntheticSf;

        let model = CycleModel::new();
        let mk_chain = || -> Vec<Box<dyn Nf>> {
            (0..3)
                .map(|i| {
                    Box::new(SyntheticNf::forward(format!("s{i}")).with_state_function(
                        SyntheticSf { access: PayloadAccess::Read, scan_passes: 50 },
                    )) as Box<dyn Nf>
                })
                .collect()
        };

        let run = |cfg: SboxConfig| {
            let sbox = SpeedyBox::new(3, cfg);
            let mut nfs = mk_chain();
            let mut initial = packet(1000);
            let fid = initial.fid().unwrap();
            traverse_chain(&mut nfs, Some(&sbox.instruments), &mut initial, &model);
            let mut ops = OpCounter::default();
            sbox.global.install(fid, &mut ops);
            fast_path(&sbox, &mut packet(1000), fid, &model, &mut FastPathScratch::default())
                .unwrap()
        };

        let par = run(SboxConfig::default());
        let seq = run(SboxConfig {
            consolidate_ha: true,
            parallelize_sf: false,
            ..SboxConfig::default()
        });
        assert_eq!(par.work_cycles, seq.work_cycles, "parallelism is free work-wise");
        assert!(
            par.latency_cycles < seq.latency_cycles,
            "parallel latency {} must beat sequential {}",
            par.latency_cycles,
            seq.latency_cycles
        );
    }

    #[test]
    fn flow_removal_cleans_up() {
        let sbox = SpeedyBox::new(1, SboxConfig::default());
        let model = CycleModel::new();
        let mut nfs: Vec<Box<dyn Nf>> = vec![Box::new(SyntheticNf::forward("a"))];
        let mut p = packet(1000);
        let fid = p.fid().unwrap();
        traverse_chain(&mut nfs, Some(&sbox.instruments), &mut p, &model);
        let mut ops = OpCounter::default();
        sbox.global.install(fid, &mut ops);
        assert!(sbox.global.contains(fid));
        sbox.remove_flow(fid);
        assert!(!sbox.global.contains(fid));
        notify_flow_closed(&mut nfs, fid);
    }
}
