//! Execution environments for SpeedyBox service chains.
//!
//! The paper prototypes SpeedyBox on two NFV platforms; this crate
//! reproduces both as laptop-scale runtimes with a calibrated cycle model
//! (see DESIGN.md for the substitution argument):
//!
//! * [`bess::BessChain`] — BESS-style: the whole chain in one
//!   run-to-completion process, cheap module hops;
//! * [`onvm::OnvmChain`] — OpenNetVM-style: one core per NF, inter-core
//!   ring hops, pipelined throughput (deterministic model);
//! * [`threaded`] — a real thread-per-NF OpenNetVM runtime over crossbeam
//!   rings, for wall-clock measurements and concurrency tests;
//! * [`workers`] — N symmetric run-to-completion worker threads sharing
//!   one classifier + Global MAT via wait-free generation loads, each
//!   owning a FID slice (RSS-style steering);
//! * [`runtime::SpeedyBox`] — the classifier + Global MAT + instrumentation
//!   bundle both environments share, with the Fig 7 ablation knobs
//!   ([`runtime::SboxConfig`]);
//! * [`parallel_exec`] — real-threads execution of the Table I
//!   state-function schedule;
//! * [`cycles::CycleModel`] — abstract-operation → cycle calibration;
//! * [`chains`] — the paper's evaluation chains, prebuilt.
//!
//! # Quickstart
//!
//! ```
//! use speedybox_platform::bess::BessChain;
//! use speedybox_platform::chains::ipfilter_chain;
//! use speedybox_packet::PacketBuilder;
//!
//! let mut chain = BessChain::speedybox(ipfilter_chain(3, 30));
//! let packets: Vec<_> = (0..10)
//!     .map(|i| {
//!         PacketBuilder::tcp()
//!             .src("10.0.0.1:4000".parse().unwrap())
//!             .dst("10.0.0.2:80".parse().unwrap())
//!             .payload(format!("payload {i}").as_bytes())
//!             .build()
//!     })
//!     .collect();
//! let stats = chain.run(packets);
//! assert_eq!(stats.delivered, 10);
//! // First packet took the slow path, the rest the consolidated fast path.
//! assert_eq!(stats.path_counts[1], 1);
//! assert_eq!(stats.path_counts[2], 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bess;
pub mod chains;
pub mod cycles;
pub mod metrics;
pub mod onvm;
pub mod parallel_exec;
pub mod runtime;
pub mod supervisor;
pub mod threaded;
pub mod workers;

pub use bess::BessChain;
pub use cycles::CycleModel;
pub use metrics::{PathKind, ProcessedPacket, RunStats};
pub use onvm::OnvmChain;
pub use runtime::{SboxConfig, SpeedyBox};
pub use supervisor::{ReplayEntry, Supervisor};
pub use threaded::{
    run_threaded, run_threaded_batched, run_threaded_on, ThreadedOnvm, ThreadedReport,
};
pub use workers::{run_workers, run_workers_on, WorkerReport};
