//! Real-threads execution of a fast-path rule's state-function schedule.
//!
//! The deterministic model in [`crate::runtime::fast_path`] *accounts* for
//! parallelism; this executor *performs* it, for wall-clock benchmarks and
//! as evidence the Table I schedule is actually safe to run concurrently.
//!
//! Safety argument: a wave never contains two batches that conflict under
//! Table I, so at most one batch in a wave WRITEs the payload (and then
//! every other batch in the wave IGNOREs it). The writer gets the real
//! packet; readers and ignorers get clones — their payload view is
//! guaranteed identical to the sequential execution's because no
//! same-wave batch writes. NF-internal state updates go through each NF's
//! own shared state (`Arc<Mutex<...>>`), exactly as on the slow path.

use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{GlobalRule, OpCounter};
use speedybox_packet::{Fid, Packet};

/// Executes a rule's state-function batches wave by wave, batches within a
/// wave on scoped threads. Returns the merged operation counts.
///
/// Functionally equivalent to [`GlobalRule::execute_batches`] (verified by
/// the equivalence test suite); use this when wall-clock parallel speedup
/// is the point.
#[must_use]
pub fn execute_parallel(rule: &GlobalRule, packet: &mut Packet, fid: Fid) -> OpCounter {
    let mut total = OpCounter::default();
    for wave in &rule.schedule {
        match wave.as_slice() {
            [] => {}
            [only] => {
                let mut ops = OpCounter::default();
                rule.batches[*only].execute(packet, fid, &mut ops);
                total.merge(&ops);
            }
            many => {
                // At most one writer per wave (Table I invariant).
                let writer = many
                    .iter()
                    .copied()
                    .find(|&i| rule.batches[i].access() == PayloadAccess::Write);
                let ops_list = std::thread::scope(|scope| {
                    let mut join = Vec::new();
                    for &i in many {
                        if Some(i) == writer {
                            continue;
                        }
                        let batch = &rule.batches[i];
                        let mut clone = packet.clone();
                        join.push(scope.spawn(move || {
                            let mut ops = OpCounter::default();
                            batch.execute(&mut clone, fid, &mut ops);
                            ops
                        }));
                    }
                    // The writer (or nothing) runs on this thread against
                    // the real packet, concurrently with the clones.
                    let mut writer_ops = OpCounter::default();
                    if let Some(w) = writer {
                        rule.batches[w].execute(packet, fid, &mut writer_ops);
                    }
                    let mut all = vec![writer_ops];
                    for h in join {
                        all.push(h.join().expect("state-function batch panicked"));
                    }
                    all
                });
                for ops in ops_list {
                    total.merge(&ops);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use speedybox_mat::state_fn::{SfBatch, StateFunction};
    use speedybox_mat::{parallel, NfId};
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn rule_from(batches: Vec<SfBatch>) -> GlobalRule {
        let schedule = parallel::schedule(&batches);
        GlobalRule::new(speedybox_mat::ConsolidatedAction::default(), batches, schedule)
    }

    fn packet() -> (Packet, Fid) {
        let mut p = PacketBuilder::tcp().payload(b"0123456789").build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        (p, fid)
    }

    #[test]
    fn parallel_readers_see_payload() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let batches: Vec<SfBatch> = (0..4)
            .map(|i| {
                let seen = seen.clone();
                SfBatch::new(
                    NfId::new(i),
                    vec![StateFunction::new("read", PayloadAccess::Read, move |ctx| {
                        seen.lock().push(ctx.packet.payload().unwrap().to_vec());
                    })],
                )
            })
            .collect();
        let rule = rule_from(batches);
        assert_eq!(rule.schedule.len(), 1, "all readers share one wave");
        let (mut p, fid) = packet();
        let ops = execute_parallel(&rule, &mut p, fid);
        assert_eq!(ops.sf_invocations, 4);
        let seen = seen.lock();
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|s| s == b"0123456789"));
    }

    #[test]
    fn writer_mutates_real_packet() {
        let batches = vec![
            SfBatch::new(
                NfId::new(0),
                vec![StateFunction::new("write", PayloadAccess::Write, |ctx| {
                    if let Ok(p) = ctx.packet.payload_mut() {
                        p[0] = b'X';
                    }
                })],
            ),
            SfBatch::new(
                NfId::new(1),
                vec![StateFunction::new("ignore", PayloadAccess::Ignore, |ctx| {
                    ctx.ops.state_updates += 1;
                })],
            ),
        ];
        let rule = rule_from(batches);
        assert_eq!(rule.schedule.len(), 1, "write+ignore share a wave");
        let (mut p, fid) = packet();
        let ops = execute_parallel(&rule, &mut p, fid);
        assert_eq!(p.payload().unwrap()[0], b'X');
        assert_eq!(ops.state_updates, 1);
    }

    #[test]
    fn sequential_waves_preserve_write_order() {
        let batches = vec![
            SfBatch::new(
                NfId::new(0),
                vec![StateFunction::new("w1", PayloadAccess::Write, |ctx| {
                    ctx.packet.payload_mut().unwrap()[0] = b'A';
                })],
            ),
            SfBatch::new(
                NfId::new(1),
                vec![StateFunction::new("w2", PayloadAccess::Write, |ctx| {
                    ctx.packet.payload_mut().unwrap()[0] = b'B';
                })],
            ),
        ];
        let rule = rule_from(batches);
        assert_eq!(rule.schedule.len(), 2, "writers serialize");
        let (mut p, fid) = packet();
        let _ = execute_parallel(&rule, &mut p, fid);
        assert_eq!(p.payload().unwrap()[0], b'B');
    }

    #[test]
    fn matches_sequential_execution() {
        // Same batches, run sequentially vs in parallel: identical packet
        // and identical shared-state effects.
        let counter = Arc::new(Mutex::new(0u64));
        let mk_batches = |counter: Arc<Mutex<u64>>| {
            vec![
                SfBatch::new(
                    NfId::new(0),
                    vec![StateFunction::new("count", PayloadAccess::Ignore, move |_| {
                        *counter.lock() += 1;
                    })],
                ),
                SfBatch::new(
                    NfId::new(1),
                    vec![StateFunction::new("read", PayloadAccess::Read, |ctx| {
                        let _ = ctx.packet.payload().unwrap();
                    })],
                ),
            ]
        };
        let rule = rule_from(mk_batches(counter.clone()));
        let (mut par, fid) = packet();
        let _ = execute_parallel(&rule, &mut par, fid);
        let par_count = *counter.lock();

        *counter.lock() = 0;
        let rule2 = rule_from(mk_batches(counter.clone()));
        let (mut seq, fid2) = packet();
        let mut ops = OpCounter::default();
        rule2.execute_batches(&mut seq, fid2, &mut ops);
        assert_eq!(par.as_bytes(), seq.as_bytes());
        assert_eq!(par_count, *counter.lock());
    }

    #[test]
    fn empty_rule_is_noop() {
        let rule = rule_from(vec![]);
        let (mut p, fid) = packet();
        let before = p.as_bytes().to_vec();
        let ops = execute_parallel(&rule, &mut p, fid);
        assert_eq!(ops.sf_invocations, 0);
        assert_eq!(p.as_bytes(), &before[..]);
    }
}
