//! Run metrics: per-packet outcomes and aggregated statistics.

use speedybox_mat::OpCounter;
use speedybox_packet::Packet;
use speedybox_telemetry::{PathClass, Telemetry};

use crate::cycles::CycleModel;

/// Which data path a packet took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Uninstrumented original chain (no SpeedyBox).
    Baseline,
    /// SpeedyBox slow path: the flow's initial packet traversing the chain
    /// while rules are recorded.
    Initial,
    /// SpeedyBox fast path: consolidated processing from the Global MAT.
    Subsequent,
}

impl PathKind {
    /// The telemetry path class with the same `path_counts` index.
    #[must_use]
    pub fn telemetry_class(self) -> PathClass {
        match self {
            PathKind::Baseline => PathClass::Baseline,
            PathKind::Initial => PathClass::Initial,
            PathKind::Subsequent => PathClass::Subsequent,
        }
    }
}

/// Records a finished packet into the telemetry hub: path mix, delivery
/// outcome, latency histogram and the abstract-operation mirror. Called by
/// the environments at the same points where `RunStats::record` would fold
/// the outcome in — the differential test holds the two byte-for-byte
/// equal.
pub fn observe(telemetry: &Telemetry, hint: u64, outcome: &ProcessedPacket) {
    let shard = telemetry.shard(hint);
    shard.record_packet(outcome.path.telemetry_class(), outcome.latency_cycles, outcome.survived());
    shard.add_ops(&outcome.ops.telemetry_totals());
}

/// Outcome of processing one packet.
#[derive(Debug)]
pub struct ProcessedPacket {
    /// The packet if it survived, `None` if dropped.
    pub packet: Option<Packet>,
    /// CPU work spent, in model cycles (sum across all cores that touched
    /// the packet).
    pub work_cycles: u64,
    /// Wall latency, in model cycles — differs from `work_cycles` when
    /// state-function batches executed in parallel or ring hops added
    /// queueing-free transfer delay.
    pub latency_cycles: u64,
    /// Which path the packet took.
    pub path: PathKind,
    /// The operations performed.
    pub ops: OpCounter,
}

impl ProcessedPacket {
    /// True if the packet survived the chain.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.packet.is_some()
    }
}

/// Aggregated statistics from a run of packets through a chain.
#[derive(Debug, Default)]
pub struct RunStats {
    /// Packets injected.
    pub sent: usize,
    /// Packets that exited the chain.
    pub delivered: usize,
    /// Packets dropped inside the chain.
    pub dropped: usize,
    /// Per-packet wall latency in model cycles (delivered and dropped).
    pub latencies_cycles: Vec<u64>,
    /// Per-packet work in model cycles.
    pub work_cycles: Vec<u64>,
    /// Aggregate operation counts.
    pub ops: OpCounter,
    /// Packets that exited, in order.
    pub outputs: Vec<Packet>,
    /// Per-stage total cycles (pipelined environments; index 0 is the
    /// manager/classifier stage, then one per NF). Empty for
    /// run-to-completion environments.
    pub stage_cycles: Vec<u64>,
    /// Packets counted per path kind: `[baseline, initial, subsequent]`.
    pub path_counts: [usize; 3],
    /// Per-worker total work cycles under FID-slice steering (index =
    /// `fid & (workers - 1)`). One entry (all work) when the chain runs a
    /// single worker or no SpeedyBox.
    pub worker_cycles: Vec<u64>,
    /// Modeled wall cycles across the symmetric workers: per batch, the
    /// busiest worker's share, summed over batches. Equals total work with
    /// one worker; with N balanced workers it approaches `total / N` — the
    /// scaling bench's throughput denominator.
    pub worker_wall_cycles: u64,
}

impl RunStats {
    /// Folds one packet outcome into the stats.
    pub fn record(&mut self, outcome: ProcessedPacket) {
        self.sent += 1;
        self.latencies_cycles.push(outcome.latency_cycles);
        self.work_cycles.push(outcome.work_cycles);
        self.ops.merge(&outcome.ops);
        match outcome.path {
            PathKind::Baseline => self.path_counts[0] += 1,
            PathKind::Initial => self.path_counts[1] += 1,
            PathKind::Subsequent => self.path_counts[2] += 1,
        }
        match outcome.packet {
            Some(p) => {
                self.delivered += 1;
                self.outputs.push(p);
            }
            None => self.dropped += 1,
        }
    }

    /// Mean work cycles per packet.
    #[must_use]
    pub fn mean_work_cycles(&self) -> f64 {
        if self.work_cycles.is_empty() {
            return 0.0;
        }
        self.work_cycles.iter().sum::<u64>() as f64 / self.work_cycles.len() as f64
    }

    /// Mean wall latency in cycles.
    #[must_use]
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.latencies_cycles.is_empty() {
            return 0.0;
        }
        self.latencies_cycles.iter().sum::<u64>() as f64 / self.latencies_cycles.len() as f64
    }

    /// Mean wall latency in microseconds under `model`'s clock.
    #[must_use]
    pub fn mean_latency_us(&self, model: &CycleModel) -> f64 {
        self.mean_latency_cycles() / model.cycles_per_us as f64
    }

    /// Processing rate for a run-to-completion environment (BESS-style):
    /// the initiating core serves one packet per wall-latency interval.
    #[must_use]
    pub fn run_to_completion_rate_mpps(&self, model: &CycleModel) -> f64 {
        model.rate_mpps(self.mean_latency_cycles())
    }

    /// Processing rate for a pipelined environment (OpenNetVM-style): the
    /// bottleneck stage bounds throughput.
    #[must_use]
    pub fn pipelined_rate_mpps(&self, model: &CycleModel) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        let bottleneck =
            self.stage_cycles.iter().map(|&c| c as f64 / self.sent as f64).fold(0.0f64, f64::max);
        model.rate_mpps(bottleneck)
    }

    /// Processing rate for the symmetric-worker runtime: per batch the
    /// busiest worker bounds wall time, so throughput is packets over the
    /// accumulated per-batch maxima ([`RunStats::worker_wall_cycles`]).
    /// Deterministic — a pure function of the cycle model and the FID
    /// partition, independent of host core count.
    #[must_use]
    pub fn worker_rate_mpps(&self, model: &CycleModel) -> f64 {
        if self.sent == 0 || self.worker_wall_cycles == 0 {
            return 0.0;
        }
        model.rate_mpps(self.worker_wall_cycles as f64 / self.sent as f64)
    }

    /// Mean latency restricted to fast-path (subsequent) packets — the
    /// steady-state number the paper's per-packet figures report.
    #[must_use]
    pub fn subsequent_only(&self) -> RunStatsView<'_> {
        RunStatsView { stats: self }
    }
}

/// Helper view exposing derived numbers (kept separate so `RunStats` stays
/// a plain data bag).
#[derive(Debug, Clone, Copy)]
pub struct RunStatsView<'a> {
    stats: &'a RunStats,
}

impl RunStatsView<'_> {
    /// Number of fast-path packets in the run.
    #[must_use]
    pub fn count(&self) -> usize {
        self.stats.path_counts[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(latency: u64, path: PathKind, survived: bool) -> ProcessedPacket {
        ProcessedPacket {
            packet: survived.then(|| speedybox_packet::PacketBuilder::tcp().build()),
            work_cycles: latency,
            latency_cycles: latency,
            path,
            ops: OpCounter::default(),
        }
    }

    #[test]
    fn record_accumulates() {
        let mut s = RunStats::default();
        s.record(outcome(100, PathKind::Initial, true));
        s.record(outcome(50, PathKind::Subsequent, true));
        s.record(outcome(10, PathKind::Subsequent, false));
        assert_eq!(s.sent, 3);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.path_counts, [0, 1, 2]);
        assert_eq!(s.outputs.len(), 2);
        assert!((s.mean_latency_cycles() - (160.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn rates_from_model() {
        let model = CycleModel::new();
        let mut s = RunStats::default();
        s.record(outcome(2000, PathKind::Baseline, true));
        s.record(outcome(2000, PathKind::Baseline, true));
        // 2000 cycles at 2000 cycles/us = 1 us per packet -> 1 Mpps.
        assert!((s.run_to_completion_rate_mpps(&model) - 1.0).abs() < 1e-9);
        s.stage_cycles = vec![1000, 4000, 2000]; // bottleneck 4000/2 = 2000
        assert!((s.pipelined_rate_mpps(&model) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunStats::default();
        let model = CycleModel::new();
        assert_eq!(s.mean_work_cycles(), 0.0);
        assert_eq!(s.run_to_completion_rate_mpps(&model), 0.0);
        assert_eq!(s.pipelined_rate_mpps(&model), 0.0);
    }
}
