//! The calibrated cycle model.
//!
//! The paper reports absolute CPU cycles measured on an Intel Xeon E5-2660
//! v4 (2.0 GHz). We cannot reproduce that testbed; instead every component
//! counts abstract operations ([`OpCounter`]) and this model maps counts to
//! cycles with constants calibrated so the paper's *ratios* come out (see
//! EXPERIMENTS.md):
//!
//! * three pass-through IPFilters cost ≈ 3 × 560 cycles, and the early-drop
//!   fast path ≈ 0.34 × that (Table III's −65 %),
//! * the fast path with one header action is ≈ 20 % *more* expensive than
//!   one original NF, crossing to −40 %/−58 % at two/three actions (Fig 4),
//! * initial packets cost several thousand cycles (ACL linear match for new
//!   flows, Fig 4's `init` bars).

use speedybox_mat::OpCounter;

/// Per-operation cycle costs.
///
/// Public fields by design: this is passive calibration data, meant to be
/// tweaked by benchmarks and ablations.
///
/// ```
/// use speedybox_mat::OpCounter;
/// use speedybox_platform::CycleModel;
///
/// let model = CycleModel::new();
/// let ops = OpCounter { parses: 2, acl_rules_scanned: 30, ..OpCounter::default() };
/// let cycles = model.cycles(&ops);
/// assert_eq!(cycles, 2 * model.parse + 30 * model.acl_rule);
/// // 2.0 GHz testbed clock: 2000 cycles per microsecond.
/// assert_eq!(model.micros(4000), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Full header parse (Ethernet+IPv4+L4).
    pub parse: u64,
    /// Classifier work: 5-tuple hash, flow-table probe, FID attach.
    pub classification: u64,
    /// One ACL rule examined in a linear scan.
    pub acl_rule: u64,
    /// Hash-table lookup (NAT mapping, firewall flow cache, Maglev
    /// connection table).
    pub hash_lookup: u64,
    /// Hash-table insert/remove.
    pub hash_update: u64,
    /// One header-field write.
    pub field_write: u64,
    /// Recomputing IPv4 + L4 checksums.
    pub checksum_fix: u64,
    /// Encapsulating or decapsulating one header.
    pub encap: u64,
    /// One payload byte through inspection.
    pub payload_byte: u64,
    /// Dispatching one state function.
    pub sf_invocation: u64,
    /// One internal-state update (counter, connection entry).
    pub state_update: u64,
    /// Recording one Local MAT entry (instrumentation write).
    pub mat_record: u64,
    /// Global MAT fast-path rule lookup.
    pub mat_lookup: u64,
    /// One consolidation run.
    pub consolidation: u64,
    /// One event-condition check.
    pub event_check: u64,
    /// CPU work of one inter-core ring-buffer hop (enqueue + dequeue +
    /// cache-line transfers) — counted in per-packet *work* cycles.
    pub ring_hop: u64,
    /// Additional wall-clock transit per ring hop (the packet sits in the
    /// ring while the downstream core gets to it) — counted in *latency*
    /// only. Total per-hop latency is `ring_hop + ring_transit`.
    pub ring_transit: u64,
    /// Releasing a dropped packet.
    pub drop: u64,
    /// BESS module-graph hop between NFs (single process, cheap).
    pub bess_module_hop: u64,
    /// Fixed fast-path cost for *forwarded* packets (metadata detach,
    /// Global-MAT executor dispatch). Dropped packets skip it — early drop
    /// short-circuits before dispatch.
    pub fastpath_forward_fixed: u64,
    /// Fixed fast-path cost for forwarded packets when the header action
    /// runs as a *compiled* micro-op program: straight-line dispatch with
    /// no interpretive branching over the consolidated action's vectors,
    /// so it undercuts [`CycleModel::fastpath_forward_fixed`].
    pub compiled_forward_fixed: u64,
    /// One masked word write from a compiled program (cheaper than
    /// [`CycleModel::field_write`]: no per-field parse/offset resolution).
    pub word_write: u64,
    /// One O(1) incremental checksum patch (RFC 1624) — cheaper than the
    /// full [`CycleModel::checksum_fix`] recompute.
    pub checksum_patch: u64,
    /// CPU frequency in cycles per microsecond (2.0 GHz testbed → 2000).
    pub cycles_per_us: u64,
}

impl Default for CycleModel {
    fn default() -> Self {
        Self {
            parse: 260,
            classification: 215,
            acl_rule: 16,
            hash_lookup: 190,
            hash_update: 200,
            field_write: 55,
            checksum_fix: 130,
            encap: 180,
            payload_byte: 3,
            sf_invocation: 40,
            state_update: 60,
            mat_record: 55,
            mat_lookup: 315,
            consolidation: 800,
            event_check: 45,
            ring_hop: 100,
            ring_transit: 350,
            drop: 35,
            bess_module_hop: 110,
            fastpath_forward_fixed: 150,
            compiled_forward_fixed: 110,
            word_write: 30,
            checksum_patch: 60,
            cycles_per_us: 2000,
        }
    }
}

impl CycleModel {
    /// The calibrated default model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps an operation count to CPU cycles.
    #[must_use]
    pub fn cycles(&self, ops: &OpCounter) -> u64 {
        ops.parses * self.parse
            + ops.classifications * self.classification
            + ops.acl_rules_scanned * self.acl_rule
            + ops.hash_lookups * self.hash_lookup
            + ops.hash_updates * self.hash_update
            + ops.field_writes * self.field_write
            + ops.checksum_fixes * self.checksum_fix
            + ops.encaps * self.encap
            + ops.payload_bytes_scanned * self.payload_byte
            + ops.sf_invocations * self.sf_invocation
            + ops.state_updates * self.state_update
            + ops.mat_records * self.mat_record
            + ops.mat_lookups * self.mat_lookup
            + ops.consolidations * self.consolidation
            + ops.event_checks * self.event_check
            + ops.ring_hops * self.ring_hop
            + ops.drops * self.drop
            + ops.word_writes * self.word_write
            + ops.checksum_patches * self.checksum_patch
    }

    /// Converts cycles to microseconds at the model's clock.
    #[must_use]
    pub fn micros(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_us as f64
    }

    /// Converts a per-packet cycle cost to a processing rate in Mpps
    /// (packets per microsecond = Mpps).
    #[must_use]
    pub fn rate_mpps(&self, cycles_per_packet: f64) -> f64 {
        if cycles_per_packet <= 0.0 {
            return 0.0;
        }
        self.cycles_per_us as f64 / cycles_per_packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ops_zero_cycles() {
        let m = CycleModel::new();
        assert_eq!(m.cycles(&OpCounter::default()), 0);
    }

    #[test]
    fn cycles_are_linear_in_ops() {
        let m = CycleModel::new();
        let one = OpCounter { parses: 1, ..OpCounter::default() };
        let five = OpCounter { parses: 5, ..OpCounter::default() };
        assert_eq!(m.cycles(&five), 5 * m.cycles(&one));
    }

    #[test]
    fn micros_at_2ghz() {
        let m = CycleModel::new();
        assert!((m.micros(2000) - 1.0).abs() < 1e-12);
        assert!((m.micros(5000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rate_is_inverse_of_cost() {
        let m = CycleModel::new();
        assert!((m.rate_mpps(2000.0) - 1.0).abs() < 1e-12);
        assert!((m.rate_mpps(4000.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.rate_mpps(0.0), 0.0);
    }

    #[test]
    fn every_op_kind_is_priced() {
        // An OpCounter with one of everything must cost the sum of all
        // per-op constants (guards against forgetting a field).
        let m = CycleModel::new();
        let ones = OpCounter {
            parses: 1,
            classifications: 1,
            acl_rules_scanned: 1,
            hash_lookups: 1,
            hash_updates: 1,
            field_writes: 1,
            checksum_fixes: 1,
            encaps: 1,
            payload_bytes_scanned: 1,
            sf_invocations: 1,
            state_updates: 1,
            mat_records: 1,
            mat_lookups: 1,
            consolidations: 1,
            event_checks: 1,
            ring_hops: 1,
            drops: 1,
            word_writes: 1,
            checksum_patches: 1,
        };
        let expected = m.parse
            + m.classification
            + m.acl_rule
            + m.hash_lookup
            + m.hash_update
            + m.field_write
            + m.checksum_fix
            + m.encap
            + m.payload_byte
            + m.sf_invocation
            + m.state_update
            + m.mat_record
            + m.mat_lookup
            + m.consolidation
            + m.event_check
            + m.ring_hop
            + m.drop
            + m.word_write
            + m.checksum_patch;
        assert_eq!(m.cycles(&ones), expected);
    }

    #[test]
    fn compiled_costs_undercut_interpreted() {
        // The compiled path's premise: straight-line masked writes and
        // O(1) checksum patches must price below their interpreted
        // counterparts, and so must the fixed forward dispatch.
        let m = CycleModel::new();
        assert!(m.word_write < m.field_write);
        assert!(m.checksum_patch < m.checksum_fix);
        assert!(m.compiled_forward_fixed < m.fastpath_forward_fixed);
    }
}
