//! A real thread-per-NF OpenNetVM-style runtime.
//!
//! [`crate::onvm::OnvmChain`] models the pipeline deterministically for the
//! figure harness; this module actually builds it: one OS thread per NF,
//! bounded crossbeam channels as the RX/TX rings, and a manager that hosts
//! the classifier and the Global MAT — the §VI-A architecture. Integration
//! tests use it to show the consolidated fast path produces byte-identical
//! output under true concurrency; wall-clock benches use it for real
//! latency numbers.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use speedybox_mat::{FastPathOutcome, OpCounter, PacketClass};
use speedybox_nf::{Nf, NfContext};
use speedybox_packet::{Fid, Magazine, Packet, PacketPool};
use speedybox_telemetry::{PathClass, Telemetry, TelemetrySnapshot};

use crate::runtime::{SboxConfig, SpeedyBox};

/// Nanoseconds of a wall-clock interval as `u64` (584 years of headroom).
#[allow(clippy::cast_possible_truncation)]
fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Message on an NF ring.
enum Msg {
    /// A packet in flight, with its injection order, send timestamp, and
    /// whether NFs should record its flow's behaviour (false for packets
    /// whose FID collides with another flow's).
    Packet { pkt: Packet, seq: usize, sent_at: Instant, record: bool },
    /// Tear down per-flow state.
    FlowClosed(Fid),
    /// Drain and exit.
    Shutdown,
}

/// Completion record returned to the manager.
enum Done {
    Delivered { pkt: Packet, seq: usize, sent_at: Instant },
    Dropped { seq: usize, sent_at: Instant },
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Surviving packets, in injection order.
    pub delivered: Vec<Packet>,
    /// Count of dropped packets.
    pub dropped: usize,
    /// Wall latency per packet (nanoseconds), indexed by injection order;
    /// dropped packets report the latency to the drop point.
    pub latencies_ns: Vec<u64>,
    /// Final telemetry snapshot for the run (latencies in nanoseconds, not
    /// model cycles). Merged across every shard, classifier and NF thread.
    pub snapshot: TelemetrySnapshot,
}

/// Runs `packets` through `nfs`, each NF on its own thread connected by
/// bounded rings of `ring_capacity` descriptors. With `speedybox` true the
/// manager classifies, consolidates and fast-paths subsequent packets; the
/// NF threads then only see flow-initial packets.
///
/// # Panics
/// Panics if an NF thread panics.
#[must_use]
pub fn run_threaded(
    nfs: Vec<Box<dyn Nf>>,
    packets: Vec<Packet>,
    speedybox: bool,
    ring_capacity: usize,
) -> ThreadedReport {
    run_threaded_batched(nfs, packets, speedybox, ring_capacity, 1)
}

/// [`run_threaded`] with the manager ingesting packets in batches of
/// `batch_size`: classification locks each flow-table shard once per batch,
/// and runs of consecutive fast-path packets are processed through
/// `GlobalMat::process_batch` with prefetched rule handles. Packet
/// outcomes are identical to `batch_size == 1`; only lock traffic (and
/// therefore manager throughput) changes.
///
/// # Panics
/// Panics if an NF thread panics.
#[must_use]
pub fn run_threaded_batched(
    nfs: Vec<Box<dyn Nf>>,
    packets: Vec<Packet>,
    speedybox: bool,
    ring_capacity: usize,
    batch_size: usize,
) -> ThreadedReport {
    run_threaded_observed(nfs, packets, speedybox, ring_capacity, batch_size, 0, |_| {})
}

/// [`run_threaded_batched`] with a live-telemetry hook: every
/// `snapshot_every` completed packets the manager merges all counter shards
/// and hands the snapshot to `on_snapshot` (pass `0` to disable periodic
/// snapshots — the final one is always available via
/// [`ThreadedReport::snapshot`]). Snapshots are taken from the manager
/// thread while NF threads keep running, exercising the lock-free
/// read-while-written path.
///
/// # Panics
/// Panics if an NF thread panics.
#[must_use]
pub fn run_threaded_observed(
    nfs: Vec<Box<dyn Nf>>,
    packets: Vec<Packet>,
    speedybox: bool,
    ring_capacity: usize,
    batch_size: usize,
    snapshot_every: usize,
    on_snapshot: impl FnMut(&TelemetrySnapshot),
) -> ThreadedReport {
    let nf_count = nfs.len();
    let sbox = speedybox
        .then(|| SpeedyBox::new(nf_count, SboxConfig { batch_size, ..SboxConfig::default() }));
    run_threaded_on(
        sbox.as_ref(),
        nfs,
        packets,
        ring_capacity,
        batch_size,
        snapshot_every,
        on_snapshot,
    )
}

/// [`run_threaded_observed`] over a caller-owned runtime (`None` for a
/// baseline run), so rules, flow tables, telemetry — and a quarantine
/// window opened by a crash handler — carry across runs. While the window
/// is open, would-be fast-path packets ride the NF rings uninstrumented
/// (no recording, no install), exactly like the deterministic
/// environments' original-walk fallback.
///
/// Closing the window takes two steps here: `unquarantine_nf` *and* a
/// `force_evict_flows` sweep. Window-era flows hold classifier entries
/// with no installed rule, and unlike the deterministic environments the
/// threaded fast path has no slow-path fallback for that state — the
/// sweep makes those flows re-record as flow-initial instead.
///
/// # Panics
/// Panics if an NF thread panics.
#[must_use]
pub fn run_threaded_on(
    sbox: Option<&SpeedyBox>,
    nfs: Vec<Box<dyn Nf>>,
    packets: Vec<Packet>,
    ring_capacity: usize,
    batch_size: usize,
    snapshot_every: usize,
    mut on_snapshot: impl FnMut(&TelemetrySnapshot),
) -> ThreadedReport {
    let total = packets.len();
    // Speedybox runs share the runtime's hub so classifier/MAT/Event Table
    // counters and per-packet records land in one place; baseline runs get
    // a private single-shard hub.
    let telemetry = match &sbox {
        Some(s) => Arc::clone(&s.telemetry),
        None => Arc::new(Telemetry::new(1)),
    };
    // One shared buffer pool; the manager and every NF thread front it
    // with a private magazine and recycle dropped packets into it.
    let pool = Arc::new(PacketPool::default());
    let mut mgr_mag = Magazine::new(Arc::clone(&pool));

    let (done_tx, done_rx) = bounded::<Done>(ring_capacity.max(total));
    // Build the ring chain back to front.
    let mut next_tx: Option<Sender<Msg>> = None;
    let mut handles = Vec::new();
    for (i, mut nf) in nfs.into_iter().enumerate().rev() {
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(ring_capacity);
        let downstream = next_tx.take();
        let done = done_tx.clone();
        let instrument = sbox.as_ref().map(|s| s.instruments[i].clone());
        let telem = Arc::clone(&telemetry);
        let mut mag = Magazine::new(Arc::clone(&pool));
        let handle = thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Packet { mut pkt, seq, sent_at, record } => {
                        let mut ops = OpCounter::default();
                        let verdict = match instrument.as_ref().filter(|_| record) {
                            Some(inst) => {
                                let mut ctx = NfContext::instrumented(inst, &mut ops);
                                nf.process(&mut pkt, &mut ctx)
                            }
                            None => {
                                let mut ctx = NfContext::baseline(&mut ops);
                                nf.process(&mut pkt, &mut ctx)
                            }
                        };
                        telem.shard(seq as u64).add_ops(&ops.telemetry_totals());
                        if !verdict.survives() {
                            mag.give_packet(pkt);
                            let _ = done.send(Done::Dropped { seq, sent_at });
                        } else {
                            match &downstream {
                                Some(next) => {
                                    let _ = next.send(Msg::Packet { pkt, seq, sent_at, record });
                                }
                                None => {
                                    let _ = done.send(Done::Delivered { pkt, seq, sent_at });
                                }
                            }
                        }
                    }
                    Msg::FlowClosed(fid) => {
                        nf.flow_closed(fid);
                        if let Some(next) = &downstream {
                            let _ = next.send(Msg::FlowClosed(fid));
                        }
                    }
                    Msg::Shutdown => {
                        if let Some(next) = &downstream {
                            let _ = next.send(Msg::Shutdown);
                        }
                        break;
                    }
                }
            }
        });
        handles.push(handle);
        next_tx = Some(tx);
    }
    drop(done_tx);
    let first_tx = next_tx;

    // Manager loop.
    let mut delivered: Vec<Option<Packet>> = (0..total).map(|_| None).collect();
    let mut latencies_ns = vec![0u64; total];
    let mut dropped = 0usize;
    let mut completed = 0usize;
    let mut in_flight = 0usize;
    // Path class per injection order, fixed at classification time so the
    // completion side knows which latency histogram to feed. Baseline runs
    // (and Collision/Handshake packets, which traverse the original chain)
    // stay at the default.
    let mut path_class = vec![PathClass::Baseline; total];
    let mut next_snap = if snapshot_every > 0 { snapshot_every } else { usize::MAX };

    let drain_one = |done: Done,
                     delivered: &mut Vec<Option<Packet>>,
                     latencies: &mut Vec<u64>,
                     dropped: &mut usize,
                     paths: &[PathClass]| {
        match done {
            Done::Delivered { mut pkt, seq, sent_at } => {
                let lat = elapsed_ns(sent_at);
                latencies[seq] = lat;
                telemetry.shard(seq as u64).record_packet(paths[seq], lat, true);
                pkt.clear_fid();
                delivered[seq] = Some(pkt);
            }
            Done::Dropped { seq, sent_at } => {
                let lat = elapsed_ns(sent_at);
                latencies[seq] = lat;
                telemetry.shard(seq as u64).record_packet(paths[seq], lat, false);
                *dropped += 1;
            }
        }
    };

    match &sbox {
        None => {
            for (seq, mut pkt) in packets.into_iter().enumerate() {
                let start = Instant::now();
                let mut ops = OpCounter::default();
                crate::runtime::tag_ingress(&mut pkt, &mut ops);
                telemetry.shard(seq as u64).add_ops(&ops.telemetry_totals());
                let closes = pkt.tcp_flags().closes_flow();
                let fid = pkt.fid();
                if let Some(tx) = &first_tx {
                    tx.send(Msg::Packet { pkt, seq, sent_at: start, record: false })
                        .expect("ring closed");
                    in_flight += 1;
                    if closes {
                        if let Some(fid) = fid {
                            tx.send(Msg::FlowClosed(fid)).expect("ring closed");
                        }
                    }
                } else {
                    pkt.clear_fid();
                    let lat = elapsed_ns(start);
                    latencies_ns[seq] = lat;
                    telemetry.shard(seq as u64).record_packet(PathClass::Baseline, lat, true);
                    delivered[seq] = Some(pkt);
                    completed += 1;
                }
                // Opportunistically drain completions to keep rings moving.
                while let Ok(done) = done_rx.try_recv() {
                    drain_one(done, &mut delivered, &mut latencies_ns, &mut dropped, &path_class);
                    completed += 1;
                    in_flight -= 1;
                }
                while completed >= next_snap {
                    on_snapshot(&telemetry.snapshot());
                    next_snap = next_snap.saturating_add(snapshot_every);
                }
            }
        }
        Some(sbox) => {
            let batch_size = batch_size.max(1);
            // Flushes a run of consecutive fast-path packets through the
            // Global MAT's batched entry point (one read-lock acquisition
            // per touched shard), then performs their FIN teardowns in
            // order. The classifier side of each teardown already happened
            // inline in `classify_batch`.
            let flush_fast = |run: &mut Vec<(usize, Packet, Fid, bool)>,
                              start: Instant,
                              delivered: &mut Vec<Option<Packet>>,
                              latencies_ns: &mut Vec<u64>,
                              dropped: &mut usize,
                              completed: &mut usize,
                              mag: &mut Magazine| {
                if run.is_empty() {
                    return;
                }
                let drained: Vec<(usize, Packet, Fid, bool)> = std::mem::take(run);
                let mut meta = Vec::with_capacity(drained.len());
                let mut pkts = Vec::with_capacity(drained.len());
                for (seq, pkt, fid, closes) in drained {
                    meta.push((seq, fid, closes));
                    pkts.push(pkt);
                }
                let mut fp_ops = vec![OpCounter::default(); pkts.len()];
                let result = sbox.global.process_batch(&mut pkts, &mut fp_ops);
                for (&(seq, _, _), op) in meta.iter().zip(&fp_ops) {
                    telemetry.shard(seq as u64).add_ops(&op.telemetry_totals());
                }
                match result {
                    Ok(outcomes) => {
                        for ((&(seq, _, _), mut pkt), outcome) in
                            meta.iter().zip(pkts).zip(outcomes)
                        {
                            let cell = telemetry.shard(seq as u64);
                            match outcome {
                                FastPathOutcome::Forwarded => {
                                    pkt.clear_fid();
                                    let lat = elapsed_ns(start);
                                    latencies_ns[seq] = lat;
                                    cell.record_packet(PathClass::Subsequent, lat, true);
                                    delivered[seq] = Some(pkt);
                                }
                                FastPathOutcome::Dropped => {
                                    let lat = elapsed_ns(start);
                                    latencies_ns[seq] = lat;
                                    cell.record_packet(PathClass::Subsequent, lat, false);
                                    mag.give_packet(pkt);
                                    *dropped += 1;
                                }
                                // Rule missing: treat as drop (does not
                                // occur with the blocking install below).
                                FastPathOutcome::NoRule => {
                                    cell.record_packet(PathClass::Subsequent, 0, false);
                                    mag.give_packet(pkt);
                                    *dropped += 1;
                                }
                            }
                            *completed += 1;
                        }
                    }
                    Err(_) => {
                        for &(seq, _, _) in &meta {
                            telemetry.shard(seq as u64).record_packet(
                                PathClass::Subsequent,
                                0,
                                false,
                            );
                        }
                        *dropped += meta.len();
                        *completed += meta.len();
                        for pkt in pkts {
                            mag.give_packet(pkt);
                        }
                    }
                }
                for (_, fid, closes) in meta {
                    if closes {
                        sbox.global.remove_flow(fid);
                        if let Some(tx) = &first_tx {
                            tx.send(Msg::FlowClosed(fid)).expect("ring closed");
                        }
                    }
                }
            };

            let mut iter = packets.into_iter().enumerate();
            loop {
                let mut chunk: Vec<(usize, Packet)> = Vec::with_capacity(batch_size);
                for _ in 0..batch_size {
                    match iter.next() {
                        Some(item) => chunk.push(item),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                let start = Instant::now();
                let (seqs, mut pkts): (Vec<usize>, Vec<Packet>) = chunk.into_iter().unzip();
                let mut cls_ops = vec![OpCounter::default(); pkts.len()];
                let classified = sbox.classifier.classify_batch(&mut pkts, &mut cls_ops);
                for (&seq, op) in seqs.iter().zip(&cls_ops) {
                    telemetry.shard(seq as u64).add_ops(&op.telemetry_totals());
                }
                // Consecutive fast-path packets accumulate here and are
                // flushed together; any slow-path packet flushes first so
                // overall processing order is preserved.
                let mut fast_run: Vec<(usize, Packet, Fid, bool)> = Vec::new();
                for ((seq, mut pkt), cls) in seqs.into_iter().zip(pkts).zip(classified) {
                    let c = match cls {
                        Ok(c) => c,
                        Err(_) => {
                            flush_fast(
                                &mut fast_run,
                                start,
                                &mut delivered,
                                &mut latencies_ns,
                                &mut dropped,
                                &mut completed,
                                &mut mgr_mag,
                            );
                            path_class[seq] = PathClass::Initial;
                            telemetry.shard(seq as u64).record_packet(PathClass::Initial, 0, false);
                            mgr_mag.give_packet(pkt);
                            dropped += 1;
                            completed += 1;
                            continue;
                        }
                    };
                    // Open quarantine window: consolidated state is
                    // untrusted, so would-be fast-path packets ride the NF
                    // rings uninstrumented instead (no recording, no
                    // install — flushing a quarantined Subsequent through
                    // the swept MAT would hit `NoRule` and drop it).
                    let quarantined = sbox.global.is_quarantined()
                        && matches!(c.class, PacketClass::Initial | PacketClass::Subsequent);
                    if quarantined {
                        telemetry.shard(seq as u64).add_quarantine_packets(1);
                    }
                    if c.class == PacketClass::Subsequent && !quarantined {
                        path_class[seq] = PathClass::Subsequent;
                        fast_run.push((seq, pkt, c.fid, c.closes_flow));
                        continue;
                    }
                    flush_fast(
                        &mut fast_run,
                        start,
                        &mut delivered,
                        &mut latencies_ns,
                        &mut dropped,
                        &mut completed,
                        &mut mgr_mag,
                    );
                    let record = c.class == PacketClass::Initial && !quarantined;
                    // Collision/Handshake packets traverse the original
                    // chain without recording, mirroring the deterministic
                    // environments' `Baseline` attribution.
                    path_class[seq] = if record { PathClass::Initial } else { PathClass::Baseline };
                    match &first_tx {
                        Some(tx) => {
                            tx.send(Msg::Packet { pkt, seq, sent_at: start, record })
                                .expect("ring closed");
                            // Block until THIS packet completes so the
                            // rule is installed before any subsequent
                            // packet of the flow is fast-pathed.
                            loop {
                                let done = done_rx.recv().expect("NF threads alive");
                                let done_seq = match &done {
                                    Done::Delivered { seq, .. } | Done::Dropped { seq, .. } => *seq,
                                };
                                drain_one(
                                    done,
                                    &mut delivered,
                                    &mut latencies_ns,
                                    &mut dropped,
                                    &path_class,
                                );
                                completed += 1;
                                if done_seq == seq {
                                    break;
                                }
                                in_flight -= 1;
                            }
                        }
                        None => {
                            pkt.clear_fid();
                            let lat = elapsed_ns(start);
                            latencies_ns[seq] = lat;
                            telemetry.shard(seq as u64).record_packet(path_class[seq], lat, true);
                            delivered[seq] = Some(pkt);
                            completed += 1;
                        }
                    }
                    if record {
                        let mut install_ops = OpCounter::default();
                        sbox.global.install(c.fid, &mut install_ops);
                        telemetry.shard(seq as u64).add_ops(&install_ops.telemetry_totals());
                    }
                    if c.closes_flow && c.class != PacketClass::Collision {
                        // Classifier entry already removed inline by
                        // `classify_batch`; tear down the MAT side.
                        sbox.global.remove_flow(c.fid);
                        if let Some(tx) = &first_tx {
                            tx.send(Msg::FlowClosed(c.fid)).expect("ring closed");
                        }
                    }
                }
                flush_fast(
                    &mut fast_run,
                    start,
                    &mut delivered,
                    &mut latencies_ns,
                    &mut dropped,
                    &mut completed,
                    &mut mgr_mag,
                );
                while completed >= next_snap {
                    on_snapshot(&telemetry.snapshot());
                    next_snap = next_snap.saturating_add(snapshot_every);
                }
            }
        }
    }

    // Drain remaining in-flight packets and shut down.
    while in_flight > 0 {
        let done = done_rx.recv().expect("NF threads alive");
        drain_one(done, &mut delivered, &mut latencies_ns, &mut dropped, &path_class);
        completed += 1;
        in_flight -= 1;
        while completed >= next_snap {
            on_snapshot(&telemetry.snapshot());
            next_snap = next_snap.saturating_add(snapshot_every);
        }
    }
    let _ = completed;
    if let Some(tx) = first_tx {
        let _ = tx.send(Msg::Shutdown);
        drop(tx);
    }
    for h in handles {
        h.join().expect("NF thread panicked");
    }
    // Collect any completions that raced with shutdown.
    while let Ok(done) = done_rx.try_recv() {
        drain_one(done, &mut delivered, &mut latencies_ns, &mut dropped, &path_class);
    }

    // Fold pool counters into the hub before the final snapshot (shard 0:
    // pool traffic is run-global, not per-flow). NF-thread magazines have
    // already flushed on drop; release the manager's too so the depth
    // gauge reflects every idle buffer.
    mgr_mag.flush();
    let ps = pool.stats();
    let shard = telemetry.shard(0);
    shard.add_pool_hits(ps.hits);
    shard.add_pool_misses(ps.misses);
    shard.add_pool_recycled(ps.recycled);
    shard.add_pool_refills(ps.refills);
    shard.add_pool_flushes(ps.flushes);
    shard.set_pool_depth(ps.depth);

    let snapshot = telemetry.snapshot();
    ThreadedReport {
        delivered: delivered.into_iter().flatten().collect(),
        dropped,
        latencies_ns,
        snapshot,
    }
}

/// The SpeedyBox runtime used inside [`run_threaded`] — exposed so tests
/// can pre-seed rules or inspect tables is intentionally *not* provided:
/// the threaded runtime owns its state for thread-safety. Use
/// [`crate::onvm::OnvmChain`] for white-box inspection.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedOnvm;

impl ThreadedOnvm {
    /// Convenience wrapper over [`run_threaded`] with a 256-slot ring.
    #[must_use]
    pub fn run(nfs: Vec<Box<dyn Nf>>, packets: Vec<Packet>, speedybox: bool) -> ThreadedReport {
        run_threaded(nfs, packets, speedybox, 256)
    }

    /// Convenience wrapper over [`run_threaded_batched`] with a 256-slot
    /// ring. `batch_size == 1` is identical to [`ThreadedOnvm::run`].
    #[must_use]
    pub fn run_batched(
        nfs: Vec<Box<dyn Nf>>,
        packets: Vec<Packet>,
        speedybox: bool,
        batch_size: usize,
    ) -> ThreadedReport {
        run_threaded_batched(nfs, packets, speedybox, 256, batch_size)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // test data built from loop indices
    use speedybox_nf::ipfilter::{AclRule, IpFilter};
    use speedybox_nf::monitor::Monitor;
    use speedybox_packet::{PacketBuilder, TcpFlags};

    use super::*;

    fn packets(n: usize, flows: u16) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{}", 1000 + (i as u16 % flows)).parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .payload(format!("p{i}").as_bytes())
                    .build()
            })
            .collect()
    }

    fn fw_chain(n: usize) -> Vec<Box<dyn Nf>> {
        (0..n).map(|_| Box::new(IpFilter::pass_through(10)) as Box<dyn Nf>).collect()
    }

    #[test]
    fn baseline_delivers_everything() {
        let report = ThreadedOnvm::run(fw_chain(3), packets(50, 4), false);
        assert_eq!(report.delivered.len(), 50);
        assert_eq!(report.dropped, 0);
        assert!(report.latencies_ns.iter().all(|&l| l > 0));
    }

    #[test]
    fn speedybox_delivers_everything() {
        let report = ThreadedOnvm::run(fw_chain(3), packets(50, 4), true);
        assert_eq!(report.delivered.len(), 50);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn outputs_identical_with_and_without_speedybox() {
        let pkts = packets(40, 3);
        let a = ThreadedOnvm::run(fw_chain(2), pkts.clone(), false);
        let b = ThreadedOnvm::run(fw_chain(2), pkts, true);
        assert_eq!(a.delivered.len(), b.delivered.len());
        for (x, y) in a.delivered.iter().zip(&b.delivered) {
            assert_eq!(x.as_bytes(), y.as_bytes());
        }
    }

    #[test]
    fn drops_happen_in_both_modes() {
        let deny: Vec<Box<dyn Nf>> = vec![
            Box::new(IpFilter::pass_through(5)),
            Box::new(IpFilter::new(vec![AclRule::deny_dst("10.0.0.2".parse().unwrap())])),
        ];
        let deny2: Vec<Box<dyn Nf>> = vec![
            Box::new(IpFilter::pass_through(5)),
            Box::new(IpFilter::new(vec![AclRule::deny_dst("10.0.0.2".parse().unwrap())])),
        ];
        let a = ThreadedOnvm::run(deny, packets(20, 2), false);
        let b = ThreadedOnvm::run(deny2, packets(20, 2), true);
        assert_eq!(a.dropped, 20);
        assert_eq!(b.dropped, 20);
    }

    #[test]
    fn monitor_counters_match_across_modes() {
        let mon_a = Monitor::new();
        let mon_b = Monitor::new();
        let chain_a: Vec<Box<dyn Nf>> = vec![Box::new(mon_a.clone())];
        let chain_b: Vec<Box<dyn Nf>> = vec![Box::new(mon_b.clone())];
        let pkts = packets(30, 3);
        let _ = ThreadedOnvm::run(chain_a, pkts.clone(), false);
        let _ = ThreadedOnvm::run(chain_b, pkts, true);
        assert_eq!(mon_a.snapshot(), mon_b.snapshot());
    }

    #[test]
    fn fin_closes_flows_in_nf_threads() {
        let mon = Monitor::new();
        let chain: Vec<Box<dyn Nf>> = vec![Box::new(mon.clone())];
        let mut pkts = packets(5, 1);
        pkts.push(
            PacketBuilder::tcp()
                .src("10.0.0.1:1000".parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build(),
        );
        let _ = ThreadedOnvm::run(chain, pkts, true);
        assert_eq!(mon.flow_count(), 0);
    }

    #[test]
    fn empty_chain_is_passthrough() {
        let report = ThreadedOnvm::run(vec![], packets(10, 2), false);
        assert_eq!(report.delivered.len(), 10);
    }

    #[test]
    fn batched_outputs_identical_to_single_packet() {
        let pkts = packets(60, 4);
        let single = ThreadedOnvm::run(fw_chain(3), pkts.clone(), true);
        for batch in [2, 8, 32, 128] {
            let batched = ThreadedOnvm::run_batched(fw_chain(3), pkts.clone(), true, batch);
            assert_eq!(single.delivered.len(), batched.delivered.len(), "batch {batch}");
            assert_eq!(single.dropped, batched.dropped, "batch {batch}");
            for (x, y) in single.delivered.iter().zip(&batched.delivered) {
                assert_eq!(x.as_bytes(), y.as_bytes(), "batch {batch}");
            }
        }
    }

    #[test]
    fn snapshot_accounts_for_every_packet() {
        for speedybox in [false, true] {
            let pkts = packets(40, 4);
            let expect_lat: usize = pkts.len();
            let report = ThreadedOnvm::run(fw_chain(2), pkts, speedybox);
            let s = &report.snapshot;
            assert_eq!(s.packets, 40, "speedybox={speedybox}");
            assert_eq!(s.delivered as usize, report.delivered.len());
            assert_eq!(s.dropped as usize, report.dropped);
            let lat = s.latency_total();
            assert_eq!(lat.count as usize, expect_lat);
            assert_eq!(lat.sum, report.latencies_ns.iter().sum::<u64>());
            if speedybox {
                // Every fast-pathed packet is exactly one Global MAT hit.
                assert_eq!(s.fastpath_hits, s.paths[2]);
                assert!(s.paths[2] > 0, "expected fast-path traffic");
                assert_eq!(s.flows_opened, 4);
            } else {
                assert_eq!(s.paths, [40, 0, 0]);
            }
        }
    }

    #[test]
    fn observed_hook_fires_and_grows_monotonically() {
        let mut seen: Vec<u64> = Vec::new();
        let report = run_threaded_observed(fw_chain(2), packets(50, 5), true, 256, 8, 10, |s| {
            seen.push(s.packets)
        });
        assert!(!seen.is_empty(), "periodic hook never fired");
        assert!(seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.snapshot.packets, 50);
    }

    #[test]
    fn quarantine_window_rides_the_rings() {
        let sbox = SpeedyBox::new(1, SboxConfig::default());
        let mon = Monitor::new();
        let chain = || vec![Box::new(mon.clone()) as Box<dyn Nf>];

        // Warm run: flows record and ride the consolidated fast path.
        let warm = run_threaded_on(Some(&sbox), chain(), packets(12, 2), 256, 1, 0, |_| {});
        assert_eq!(warm.delivered.len(), 12);
        assert!(warm.snapshot.paths[2] > 0, "expected fast-path traffic");

        // Crash handling: mask first, then sweep (same order as kill_nf).
        sbox.global.quarantine_nf(0);
        sbox.force_evict_flows(usize::MAX);
        let q = run_threaded_on(Some(&sbox), chain(), packets(12, 2), 256, 1, 0, |_| {});
        assert_eq!(q.delivered.len(), 12, "window must be loss-free");
        assert_eq!(q.snapshot.paths[2], warm.snapshot.paths[2], "no fast path in the window");
        assert_eq!(q.snapshot.paths[1], warm.snapshot.paths[1], "no recording in the window");
        assert_eq!(q.snapshot.quarantine_packets - warm.snapshot.quarantine_packets, 12);

        // Close the window: unquarantine AND sweep (window-era flows hold
        // classifier entries with no rule — see `run_threaded_on`).
        sbox.global.unquarantine_nf(0);
        sbox.force_evict_flows(usize::MAX);
        let r = run_threaded_on(Some(&sbox), chain(), packets(12, 2), 256, 1, 0, |_| {});
        assert_eq!(r.delivered.len(), 12);
        assert_eq!(r.snapshot.paths[1] - q.snapshot.paths[1], 2, "flows re-record");
        assert_eq!(r.snapshot.paths[2] - q.snapshot.paths[2], 10);
        // The monitor saw every packet of all three runs exactly once.
        assert_eq!(mon.snapshot().values().map(|c| c.packets).sum::<u64>(), 36);
    }

    #[test]
    fn batched_fin_closes_flows() {
        let mon = Monitor::new();
        let chain: Vec<Box<dyn Nf>> = vec![Box::new(mon.clone())];
        let mut pkts = packets(6, 1);
        pkts.push(
            PacketBuilder::tcp()
                .src("10.0.0.1:1000".parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .flags(TcpFlags::FIN | TcpFlags::ACK)
                .build(),
        );
        let _ = ThreadedOnvm::run_batched(chain, pkts, true, 16);
        assert_eq!(mon.flow_count(), 0);
    }
}
