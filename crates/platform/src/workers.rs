//! Symmetric run-to-completion workers over a shared SpeedyBox runtime.
//!
//! Where [`crate::threaded`] builds the OpenNetVM pipeline (one thread per
//! NF, ring hops between them), this module builds the paper's other
//! scaling axis: N identical workers, each owning a FID slice of the
//! traffic (RSS-style steering, `fid & (workers - 1)`), each driving
//! classify → consolidated fast path → telemetry to completion on its own
//! thread. The classifier and Global MAT are *shared* — workers read rule
//! generations wait-free (one atomic load, see DESIGN.md §12) while the
//! control plane churns installs and removals concurrently.
//!
//! Per-flow packet order is preserved by construction: a flow's FID maps
//! to exactly one worker, and each worker processes its slice in arrival
//! order. Cross-flow order across workers is not defined — callers that
//! compare outputs across worker counts must compare per-flow sequences
//! or sorted multisets, exactly like a real multi-queue NIC deployment.

use std::sync::Arc;
use std::thread;

use speedybox_mat::{OpCounter, PacketClass};
use speedybox_nf::Nf;
use speedybox_packet::{Magazine, Packet, PacketPool};
use speedybox_telemetry::{PathClass, TelemetrySnapshot};

use crate::cycles::CycleModel;
use crate::runtime::{
    classify, fast_path, notify_flow_closed, traverse_chain, FastPathScratch, SboxConfig, SpeedyBox,
};

/// Result of a worker-pool run.
#[derive(Debug)]
pub struct WorkerReport {
    /// Surviving packets: worker 0's slice first, then worker 1's, and so
    /// on — per-flow order intact, cross-flow order worker-local.
    pub delivered: Vec<Packet>,
    /// Count of dropped packets across all workers.
    pub dropped: usize,
    /// Packets steered to each worker (delivered + dropped).
    pub per_worker: Vec<usize>,
    /// Model cycles of work performed by each worker.
    pub per_worker_cycles: Vec<u64>,
    /// Final telemetry snapshot merged across all shards.
    pub snapshot: TelemetrySnapshot,
}

/// Steers a packet to its owning worker: `fid & (workers - 1)`, the same
/// slice rule the deterministic environments use for work attribution.
/// Unparseable packets belong to worker 0 by convention. `workers` must be
/// a power of two.
#[must_use]
pub fn steer(packet: &Packet, workers: usize) -> usize {
    debug_assert!(workers.is_power_of_two());
    match packet.five_tuple() {
        Ok(t) => t.fid().index() & (workers - 1),
        Err(_) => 0,
    }
}

/// Runs `packets` through `config.worker_count()` symmetric workers, one
/// OS thread each. `nf_sets` provides one NF chain instance per worker
/// (flows are partitioned, so per-flow NF state lives with its owning
/// worker — the per-core-state arrangement of a real RSS deployment); all
/// sets must have the same length.
///
/// The SpeedyBox runtime — classifier, Global MAT, Event Table, telemetry
/// — is shared across workers. Fast-path lookups load the current rule
/// generation with a single atomic operation and never block; slow-path
/// installs and flow teardowns serialize only against other writers of the
/// same table shard.
///
/// # Panics
/// Panics if `nf_sets.len() != config.worker_count()`, if chain lengths
/// differ, or if a worker thread panics.
#[must_use]
pub fn run_workers(
    nf_sets: Vec<Vec<Box<dyn Nf>>>,
    packets: Vec<Packet>,
    config: SboxConfig,
) -> WorkerReport {
    let nf_count = nf_sets.first().map_or(0, Vec::len);
    let sbox = Arc::new(SpeedyBox::new(nf_count, config));
    run_workers_on(&sbox, nf_sets, packets)
}

/// Like [`run_workers`], but over a caller-owned runtime, so state — rules,
/// flow tables, telemetry, a quarantine window opened by a crash handler —
/// carries across runs. The worker count and pool size come from
/// `sbox.config`.
///
/// # Panics
/// Panics if `nf_sets.len() != sbox.config.worker_count()`, if chain
/// lengths differ, or if a worker thread panics.
#[must_use]
pub fn run_workers_on(
    sbox: &Arc<SpeedyBox>,
    nf_sets: Vec<Vec<Box<dyn Nf>>>,
    packets: Vec<Packet>,
) -> WorkerReport {
    let config = &sbox.config;
    let workers = config.worker_count();
    assert_eq!(nf_sets.len(), workers, "need one NF chain per worker");
    let nf_count = nf_sets.first().map_or(0, Vec::len);
    assert!(nf_sets.iter().all(|s| s.len() == nf_count), "uneven NF chains");

    let telemetry = Arc::clone(&sbox.telemetry);
    // One shared buffer pool; each worker fronts it with a private
    // magazine so depot-lock traffic stays off the per-packet path.
    let pool = Arc::new(PacketPool::bounded(2048, config.pool_buffers));

    // RSS steering: partition the trace by FID slice, preserving arrival
    // order within each slice (and therefore within each flow).
    let mut slices: Vec<Vec<Packet>> = (0..workers).map(|_| Vec::new()).collect();
    for pkt in packets {
        let w = steer(&pkt, workers);
        slices[w].push(pkt);
    }

    let mut lanes: Vec<(Vec<Packet>, usize, usize, u64)> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (mut nfs, slice) in nf_sets.into_iter().zip(slices) {
            let sbox = Arc::clone(sbox);
            let mut mag = Magazine::new(Arc::clone(&pool));
            handles.push(scope.spawn(move || worker_loop(&sbox, &mut nfs, slice, &mut mag)));
        }
        for h in handles {
            lanes.push(h.join().expect("worker thread panicked"));
        }
    });
    // Idle-eviction tick at the run boundary: the threaded harness has no
    // deterministic mid-run batch boundary, so idle flows are reclaimed
    // once all lanes drain. O(1) when nothing is due.
    sbox.tick_idle_eviction();

    // Fold pool counters into the shared hub before snapshotting (shard 0:
    // pool traffic is run-global, not per-flow).
    let ps = pool.stats();
    let shard = telemetry.shard(0);
    shard.add_pool_hits(ps.hits);
    shard.add_pool_misses(ps.misses);
    shard.add_pool_recycled(ps.recycled);
    shard.add_pool_refills(ps.refills);
    shard.add_pool_flushes(ps.flushes);
    shard.set_pool_depth(ps.depth);

    let mut delivered = Vec::new();
    let mut dropped = 0;
    let mut per_worker = Vec::with_capacity(workers);
    let mut per_worker_cycles = Vec::with_capacity(workers);
    for (out, lane_dropped, processed, cycles) in lanes {
        dropped += lane_dropped;
        per_worker.push(processed);
        per_worker_cycles.push(cycles);
        delivered.extend(out);
    }
    WorkerReport {
        delivered,
        dropped,
        per_worker,
        per_worker_cycles,
        snapshot: telemetry.snapshot(),
    }
}

/// One worker's run-to-completion loop over its FID slice: classify, then
/// fast path for subsequent packets or instrumented traversal + install
/// for flow-initial ones, then teardown and telemetry — every packet fully
/// finished before the next begins.
fn worker_loop(
    sbox: &SpeedyBox,
    nfs: &mut [Box<dyn Nf>],
    slice: Vec<Packet>,
    mag: &mut Magazine,
) -> (Vec<Packet>, usize, usize, u64) {
    let model = CycleModel::new();
    let processed = slice.len();
    let mut delivered = Vec::with_capacity(slice.len());
    let mut dropped = 0usize;
    let mut cycles = 0u64;
    let mut scratch = FastPathScratch::default();
    for mut pkt in slice {
        let mut cls_ops = OpCounter::default();
        let (fid, class, closes_flow) = match classify(sbox, &mut pkt, &mut cls_ops) {
            Ok(c) => c,
            Err(_) => {
                // Unparseable: drop at the classifier (buffer recycled).
                cls_ops.drops += 1;
                let work = model.cycles(&cls_ops);
                cycles += work;
                let cell = sbox.telemetry.shard(0);
                cell.record_packet(PathClass::Initial, work, false);
                cell.add_ops(&cls_ops.telemetry_totals());
                dropped += 1;
                mag.give_packet(pkt);
                continue;
            }
        };
        // Open quarantine window: consolidated state is untrusted, so
        // would-be fast-path packets ride the uninstrumented original walk
        // (no recording, no install) until the window closes.
        let class = if sbox.global.is_quarantined()
            && matches!(class, PacketClass::Initial | PacketClass::Subsequent)
        {
            sbox.telemetry.shard(fid.index() as u64).add_quarantine_packets(1);
            PacketClass::Handshake
        } else {
            class
        };
        let (survived, path, work) = match class {
            PacketClass::Initial => {
                let res = traverse_chain(nfs, Some(&sbox.instruments), &mut pkt, &model);
                let mut install_ops = OpCounter::default();
                sbox.global.install(fid, &mut install_ops);
                cls_ops.merge(&res.ops);
                cls_ops.merge(&install_ops);
                let work = res.per_nf_cycles.iter().sum::<u64>() + model.cycles(&install_ops);
                (res.survived, PathClass::Initial, work)
            }
            PacketClass::Collision | PacketClass::Handshake | PacketClass::Rejected => {
                let res = traverse_chain(nfs, None, &mut pkt, &model);
                cls_ops.merge(&res.ops);
                (res.survived, PathClass::Baseline, res.per_nf_cycles.iter().sum())
            }
            PacketClass::Subsequent => match fast_path(sbox, &mut pkt, fid, &model, &mut scratch) {
                Some(res) => {
                    cls_ops.merge(&res.ops);
                    (res.survived, PathClass::Subsequent, res.work_cycles)
                }
                None => {
                    // Rule evicted by concurrent churn: slow-path fallback
                    // reinstalls, exactly like the deterministic runtimes.
                    let res = traverse_chain(nfs, Some(&sbox.instruments), &mut pkt, &model);
                    let mut install_ops = OpCounter::default();
                    sbox.global.install(fid, &mut install_ops);
                    cls_ops.merge(&res.ops);
                    cls_ops.merge(&install_ops);
                    let work = res.per_nf_cycles.iter().sum::<u64>() + model.cycles(&install_ops);
                    (res.survived, PathClass::Initial, work)
                }
            },
        };
        if closes_flow && class != PacketClass::Collision {
            sbox.remove_flow(fid);
            notify_flow_closed(nfs, fid);
        }
        let total = model.cycles(&cls_ops).max(work);
        cycles += total;
        let cell = sbox.telemetry.shard(fid.index() as u64);
        cell.record_packet(path, total, survived);
        cell.add_ops(&cls_ops.telemetry_totals());
        if survived {
            pkt.clear_fid();
            delivered.push(pkt);
        } else {
            mag.give_packet(pkt);
            dropped += 1;
        }
    }
    (delivered, dropped, processed, cycles)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // test data built from loop indices
    use std::collections::HashMap;

    use speedybox_nf::ipfilter::IpFilter;
    use speedybox_nf::monitor::Monitor;
    use speedybox_packet::{PacketBuilder, TcpFlags};

    use super::*;

    fn packets(n: usize, flows: u16) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{}", 1000 + (i as u16 % flows)).parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .payload(format!("p{i}").as_bytes())
                    .build()
            })
            .collect()
    }

    fn fw_sets(workers: usize, chain_len: usize) -> Vec<Vec<Box<dyn Nf>>> {
        (0..workers)
            .map(|_| {
                (0..chain_len)
                    .map(|_| Box::new(IpFilter::pass_through(10)) as Box<dyn Nf>)
                    .collect()
            })
            .collect()
    }

    fn config(workers: usize) -> SboxConfig {
        SboxConfig { workers, ..SboxConfig::default() }
    }

    fn sorted_bytes(pkts: &[Packet]) -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = pkts.iter().map(|p| p.as_bytes().to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn pool_delivers_everything() {
        for workers in [1, 2, 4, 8] {
            let report = run_workers(fw_sets(workers, 3), packets(80, 8), config(workers));
            assert_eq!(report.delivered.len(), 80, "workers={workers}");
            assert_eq!(report.dropped, 0, "workers={workers}");
            assert_eq!(report.per_worker.iter().sum::<usize>(), 80);
            assert_eq!(report.per_worker.len(), workers);
        }
    }

    #[test]
    fn outputs_invariant_across_worker_counts() {
        let pkts = packets(60, 6);
        let single = run_workers(fw_sets(1, 2), pkts.clone(), config(1));
        let base = sorted_bytes(&single.delivered);
        for workers in [2, 4, 8] {
            let multi = run_workers(fw_sets(workers, 2), pkts.clone(), config(workers));
            assert_eq!(sorted_bytes(&multi.delivered), base, "workers={workers}");
            assert_eq!(multi.dropped, single.dropped, "workers={workers}");
        }
    }

    #[test]
    fn per_flow_order_is_preserved() {
        let pkts = packets(64, 4);
        let report = run_workers(fw_sets(4, 2), pkts.clone(), config(4));
        // Group expected payloads per source port (flow), in input order.
        let mut expected: HashMap<u16, Vec<Vec<u8>>> = HashMap::new();
        for p in &pkts {
            expected
                .entry(p.five_tuple().unwrap().src_port)
                .or_default()
                .push(p.payload().unwrap().to_vec());
        }
        let mut got: HashMap<u16, Vec<Vec<u8>>> = HashMap::new();
        for p in &report.delivered {
            got.entry(p.five_tuple().unwrap().src_port)
                .or_default()
                .push(p.payload().unwrap().to_vec());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn steering_partitions_all_flows() {
        let pkts = packets(32, 8);
        for workers in [1, 2, 4] {
            for p in &pkts {
                assert!(steer(p, workers) < workers);
            }
        }
        // A flow always lands on the same worker.
        let a = steer(&pkts[0], 4);
        assert_eq!(steer(&pkts[8], 4), a);
    }

    #[test]
    fn fin_tears_down_everywhere() {
        let monitors: Vec<Monitor> = (0..2).map(|_| Monitor::new()).collect();
        let nf_sets: Vec<Vec<Box<dyn Nf>>> =
            monitors.iter().map(|m| vec![Box::new(m.clone()) as Box<dyn Nf>]).collect();
        let mut pkts = packets(8, 2);
        for port in [1000u16, 1001] {
            pkts.push(
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{port}").parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .flags(TcpFlags::FIN | TcpFlags::ACK)
                    .build(),
            );
        }
        let report = run_workers(nf_sets, pkts, config(2));
        assert_eq!(report.dropped, 0);
        assert_eq!(monitors.iter().map(Monitor::flow_count).sum::<usize>(), 0);
    }

    #[test]
    fn quarantine_window_rides_the_original_walk() {
        let sbox = Arc::new(SpeedyBox::new(1, config(2)));
        // Warm run: flows record and ride the consolidated fast path.
        let warm = run_workers_on(&sbox, fw_sets(2, 1), packets(16, 2));
        assert_eq!(warm.delivered.len(), 16);
        assert!(warm.snapshot.paths[2] > 0, "expected fast-path traffic");

        // Crash handling: mask first, then sweep (same order as kill_nf).
        sbox.global.quarantine_nf(0);
        sbox.force_evict_flows(usize::MAX);
        let quarantined = run_workers_on(&sbox, fw_sets(2, 1), packets(16, 2));
        assert_eq!(quarantined.delivered.len(), 16, "window must be loss-free");
        assert_eq!(
            quarantined.snapshot.paths[0] - warm.snapshot.paths[0],
            16,
            "open window: everything on the uninstrumented original walk"
        );
        assert_eq!(quarantined.snapshot.paths[1], warm.snapshot.paths[1]);
        assert_eq!(quarantined.snapshot.paths[2], warm.snapshot.paths[2]);
        assert_eq!(quarantined.snapshot.quarantine_packets - warm.snapshot.quarantine_packets, 16);

        // Window closes: both flows re-record, then fast path again.
        sbox.global.unquarantine_nf(0);
        let recovered = run_workers_on(&sbox, fw_sets(2, 1), packets(16, 2));
        assert_eq!(recovered.snapshot.paths[1] - quarantined.snapshot.paths[1], 2);
        assert_eq!(recovered.snapshot.paths[2] - quarantined.snapshot.paths[2], 14);
    }

    #[test]
    fn snapshot_covers_every_packet() {
        let report = run_workers(fw_sets(4, 2), packets(40, 8), config(4));
        assert_eq!(report.snapshot.packets, 40);
        assert_eq!(report.snapshot.flows_opened, 8);
        assert!(report.snapshot.paths[2] > 0, "expected fast-path traffic");
    }
}
