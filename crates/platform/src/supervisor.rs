//! Chain-consistent NF crash/restart supervision.
//!
//! The supervisor checkpoints *every* NF's state at one packet boundary
//! (a chain-consistent cut — no packet is half-reflected across NFs) and
//! keeps a bounded in-flight log of the frames processed since. On an NF
//! crash the whole chain rolls back to the checkpoint and replays the log
//! through the uninstrumented original walk, so post-recovery NF state is
//! byte-for-byte what a crash-free run would hold.
//!
//! Rolling the *whole* chain back — rather than just the dead NF — is
//! what makes the cut consistent: downstream NFs have already digested
//! packets the dead NF's restored state has not, and replaying those
//! packets into only the dead NF would double-count them everywhere else.
//! The environments pair a rollback with a Global MAT quarantine (rules
//! masked, classifier swept) so the fast path cannot serve actions
//! consolidated from pre-crash recordings while the window is open.

use std::fmt;
use std::sync::Arc;

use speedybox_mat::OpCounter;
use speedybox_nf::{Nf, NfContext, StateSnapshot};
use speedybox_packet::Packet;

/// One entry of the in-flight log: everything that mutated NF state since
/// the last checkpoint, in arrival order.
pub enum ReplayEntry {
    /// A data packet, as raw frame bytes plus whether its FIN/RST teardown
    /// fanned out to `flow_closed` when it was first processed
    /// (`closes_flow && class != Collision` at classification time). The
    /// flag is logged rather than recomputed because replay happens after
    /// the classifier was swept: the original run suppressed teardown for
    /// FID-collision packets, and that classification cannot be
    /// reconstructed from the bytes alone.
    Frame {
        /// The packet's wire bytes at ingress.
        bytes: Vec<u8>,
        /// Whether teardown fan-out ran for this frame originally.
        teardown: bool,
    },
    /// A non-packet event that mutated NF state (e.g. a backend health
    /// flip), replayed by re-invoking the closure.
    External(Arc<dyn Fn() + Send + Sync>),
}

/// Default in-flight log bound for a checkpoint interval: twice the
/// interval, so the bound only forces early checkpoints under external-
/// event pressure (frames alone trip the periodic interval first).
#[must_use]
pub fn default_log_bound(interval: u64) -> usize {
    usize::try_from(interval.saturating_mul(2)).unwrap_or(usize::MAX).max(1)
}

impl fmt::Debug for ReplayEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayEntry::Frame { bytes, teardown } => f
                .debug_struct("Frame")
                .field("len", &bytes.len())
                .field("teardown", teardown)
                .finish(),
            ReplayEntry::External(_) => f.write_str("External(..)"),
        }
    }
}

/// Periodic chain-consistent checkpointing plus crash/rollback/replay.
///
/// Owned by an environment (one per chain instance); all methods take the
/// chain's NFs by reference because the environment owns those too.
pub struct Supervisor {
    /// Packets between periodic checkpoints.
    interval: u64,
    /// Hard bound on in-flight log entries; hitting it forces an early
    /// checkpoint, so replay depth after a crash never exceeds this.
    log_bound: usize,
    /// Packets processed since the last checkpoint.
    since: u64,
    /// Per-NF state captured at the last checkpoint (`None` for stateless
    /// NFs — nothing to restore).
    snapshot: Vec<Option<StateSnapshot>>,
    /// Frames and external events since the last checkpoint.
    log: Vec<ReplayEntry>,
}

impl fmt::Debug for Supervisor {
    // Snapshot payloads are opaque `Any`; the numbers are what matter
    // when staring at a failing sim artifact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("interval", &self.interval)
            .field("log_bound", &self.log_bound)
            .field("since", &self.since)
            .field("log_depth", &self.log.len())
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor and takes the initial checkpoint immediately,
    /// so a crash before the first periodic checkpoint rolls back to the
    /// chain's starting state.
    #[must_use]
    pub fn new(nfs: &[Box<dyn Nf>], interval: u64, log_bound: usize) -> Self {
        let mut sup = Supervisor {
            interval: interval.max(1),
            log_bound: log_bound.max(1),
            since: 0,
            snapshot: Vec::new(),
            log: Vec::new(),
        };
        sup.checkpoint(nfs);
        sup
    }

    /// Packets between periodic checkpoints.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Current in-flight log depth (replay cost of a crash right now).
    #[must_use]
    pub fn log_depth(&self) -> usize {
        self.log.len()
    }

    /// Takes a chain-consistent checkpoint: snapshots every NF at this
    /// packet boundary and clears the in-flight log.
    pub fn checkpoint(&mut self, nfs: &[Box<dyn Nf>]) {
        self.snapshot = nfs.iter().map(|nf| nf.snapshot_state()).collect();
        self.log.clear();
        self.since = 0;
    }

    /// Records one processed packet into the in-flight log, checkpointing
    /// first if the periodic interval elapsed or the log hit its bound.
    /// Call at the top of packet processing (before NF state mutates) with
    /// the ingress bytes; `teardown` is whether `flow_closed` fan-out will
    /// run for this frame. Returns `true` if a checkpoint was taken.
    pub fn note_packet(&mut self, frame: &[u8], teardown: bool, nfs: &[Box<dyn Nf>]) -> bool {
        let checkpointed = self.since >= self.interval || self.log.len() >= self.log_bound;
        if checkpointed {
            self.checkpoint(nfs);
        }
        self.log.push(ReplayEntry::Frame { bytes: frame.to_vec(), teardown });
        self.since += 1;
        checkpointed
    }

    /// Records a non-packet state mutation (e.g. a backend health flip)
    /// for replay in arrival order relative to the logged frames.
    pub fn log_external(&mut self, event: Arc<dyn Fn() + Send + Sync>) {
        self.log.push(ReplayEntry::External(event));
    }

    /// Handles an NF crash: crashes *all* NFs (chain-consistent rollback),
    /// restores each from the checkpoint, replays the in-flight log
    /// through the uninstrumented walk (unless `replay` is false — the
    /// seeded-bug mutation), then takes a fresh checkpoint. Returns the
    /// replay depth (log entries reprocessed).
    pub fn kill(&mut self, nfs: &mut [Box<dyn Nf>], replay: bool) -> usize {
        for nf in nfs.iter_mut() {
            nf.crash();
        }
        for (nf, snap) in nfs.iter_mut().zip(&self.snapshot) {
            if let Some(snap) = snap {
                let restored = nf.restore_state(snap);
                debug_assert!(restored, "{}: snapshot no longer restorable", nf.name());
            }
        }
        let depth = self.log.len();
        if replay {
            for entry in &self.log {
                match entry {
                    ReplayEntry::Frame { bytes, teardown } => {
                        replay_frame(nfs, bytes, *teardown);
                    }
                    ReplayEntry::External(event) => event(),
                }
            }
        }
        self.checkpoint(nfs);
        depth
    }
}

/// Replays one logged frame through the uninstrumented original walk —
/// the same NF-visible processing as the baseline path, minus recording
/// (the quarantine window re-records organically after it closes).
fn replay_frame(nfs: &mut [Box<dyn Nf>], bytes: &[u8], teardown: bool) {
    let Ok(mut packet) = Packet::from_frame(bytes) else {
        return;
    };
    if let Ok(t) = packet.five_tuple() {
        packet.set_fid(t.fid());
    }
    let mut ops = OpCounter::default();
    let mut survived = true;
    for nf in nfs.iter_mut() {
        if !survived {
            break;
        }
        let mut ctx = NfContext::baseline(&mut ops);
        survived = nf.process(&mut packet, &mut ctx).survives();
    }
    if teardown {
        if let Some(fid) = packet.fid() {
            for nf in nfs.iter_mut() {
                nf.flow_closed(fid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use speedybox_nf::monitor::Monitor;
    use speedybox_packet::PacketBuilder;

    use super::*;

    /// A one-NF chain plus a handle that sees the boxed monitor's state
    /// (the counters are `Arc`-shared across clones).
    fn chain() -> (Vec<Box<dyn Nf>>, Monitor) {
        let mon = Monitor::new();
        (vec![Box::new(mon.clone())], mon)
    }

    fn frame(src_port: u16) -> Vec<u8> {
        PacketBuilder::tcp()
            .src(format!("10.0.0.1:{src_port}").parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"abc")
            .build()
            .as_bytes()
            .to_vec()
    }

    fn process(nfs: &mut [Box<dyn Nf>], bytes: &[u8]) {
        replay_frame(nfs, bytes, false);
    }

    fn monitor_packets(mon: &Monitor) -> u64 {
        mon.snapshot().values().map(|c| c.packets).sum()
    }

    #[test]
    fn kill_with_replay_reconstructs_state() {
        let (mut nfs, mon) = chain();
        let mut sup = Supervisor::new(&nfs, 4, 8);
        for i in 0..7u16 {
            let f = frame(1000 + i);
            sup.note_packet(&f, false, &nfs);
            process(&mut nfs, &f);
        }
        let before = monitor_packets(&mon);
        let depth = sup.kill(&mut nfs, true);
        assert!(depth > 0 && depth <= 8);
        assert_eq!(monitor_packets(&mon), before, "replay must reconstruct NF state");
        // Post-kill checkpoint is fresh: an immediate second kill replays nothing.
        assert_eq!(sup.kill(&mut nfs, true), 0);
        assert_eq!(monitor_packets(&mon), before);
    }

    #[test]
    fn skipping_replay_loses_state() {
        let (mut nfs, mon) = chain();
        let mut sup = Supervisor::new(&nfs, 100, 100);
        for i in 0..5u16 {
            let f = frame(2000 + i);
            sup.note_packet(&f, false, &nfs);
            process(&mut nfs, &f);
        }
        let before = monitor_packets(&mon);
        sup.kill(&mut nfs, false);
        assert!(monitor_packets(&mon) < before, "skipped replay must lose in-flight state");
    }

    #[test]
    fn log_bound_forces_checkpoint() {
        let (mut nfs, _mon) = chain();
        let mut sup = Supervisor::new(&nfs, 1_000_000, 3);
        let mut checkpoints = 0;
        for i in 0..10u16 {
            let f = frame(3000 + i);
            if sup.note_packet(&f, false, &nfs) {
                checkpoints += 1;
            }
            process(&mut nfs, &f);
            assert!(sup.log_depth() <= 3, "log must stay within its bound");
        }
        assert!(checkpoints >= 3, "bound must force periodic checkpoints");
    }

    #[test]
    fn external_events_replay_in_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (mut nfs, _mon) = chain();
        let mut sup = Supervisor::new(&nfs, 100, 100);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = frame(4000);
        sup.note_packet(&f, false, &nfs);
        process(&mut nfs, &f);
        let fired2 = Arc::clone(&fired);
        sup.log_external(Arc::new(move || {
            fired2.fetch_add(1, Ordering::Relaxed);
        }));
        sup.kill(&mut nfs, true);
        assert_eq!(fired.load(Ordering::Relaxed), 1, "external event must replay");
        sup.kill(&mut nfs, true);
        assert_eq!(fired.load(Ordering::Relaxed), 1, "fresh checkpoint clears the log");
    }
}
