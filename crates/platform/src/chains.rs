//! Ready-made service chains from the paper's evaluation (§VII).
//!
//! Each builder returns the boxed NF list plus cloned handles to the
//! stateful NFs so callers can inspect counters, logs and backends — our
//! NFs share their state through `Arc`, so a clone observes the chain's
//! live state.

use std::net::Ipv4Addr;

use speedybox_mat::state_fn::PayloadAccess;
use speedybox_nf::dosguard::DosGuard;
use speedybox_nf::ipfilter::IpFilter;
use speedybox_nf::maglev::Maglev;
use speedybox_nf::mazunat::MazuNat;
use speedybox_nf::monitor::Monitor;
use speedybox_nf::snort::SnortLite;
use speedybox_nf::synthetic::{SyntheticNf, SyntheticSf};
use speedybox_nf::vpn::VpnGateway;
use speedybox_nf::Nf;

/// Default rule set used wherever a Snort instance is needed.
pub const DEFAULT_SNORT_RULES: &str = r#"
alert tcp any any -> any 80 (msg:"suspicious GET"; content:"evil";)
alert tcp any any -> any any (msg:"exfil marker"; content:"XFIL";)
log tcp any any -> any any (msg:"debug probe"; content:"probe";)
pass tcp any any -> any any (content:"healthcheck";)
log udp any any -> any any (msg:"udp beacon"; content:"beacon";)
"#;

/// A chain of `n` pass-through IPFilters with `rules` ACL entries each —
/// Fig 4 / Fig 8's workload ("The ACL rules of the IPFilters are carefully
/// modified to avoid packet drops").
#[must_use]
pub fn ipfilter_chain(n: usize, rules: usize) -> Vec<Box<dyn Nf>> {
    (0..n).map(|_| Box::new(IpFilter::pass_through(rules)) as Box<dyn Nf>).collect()
}

/// Fig 5's chain: `n` identical synthetic NFs whose only work is a
/// Snort-inspection-equivalent payload-READ state function.
#[must_use]
pub fn synthetic_sf_chain(n: usize, scan_passes: u32) -> Vec<Box<dyn Nf>> {
    (0..n)
        .map(|i| {
            Box::new(
                SyntheticNf::forward(format!("synthetic-{i}"))
                    .with_state_function(SyntheticSf { access: PayloadAccess::Read, scan_passes }),
            ) as Box<dyn Nf>
        })
        .collect()
}

/// Handles into the Snort+Monitor chain (Fig 6/7).
#[derive(Debug, Clone)]
pub struct SnortMonitorHandles {
    /// The IDS (shared log).
    pub snort: SnortLite,
    /// The monitor (shared counters).
    pub monitor: Monitor,
}

/// Fig 6/7's chain: Snort followed by a Monitor. "Both of them have header
/// actions and state functions, and thus will benefit from the two
/// optimizations simultaneously."
///
/// # Panics
/// Panics if the built-in rule set fails to parse (programming error).
#[must_use]
pub fn snort_monitor_chain() -> (Vec<Box<dyn Nf>>, SnortMonitorHandles) {
    let snort = SnortLite::from_rules_text(DEFAULT_SNORT_RULES).expect("built-in rules parse");
    let monitor = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(snort.clone()), Box::new(monitor.clone())];
    (nfs, SnortMonitorHandles { snort, monitor })
}

/// Handles into Chain 1 (§VII-B3).
#[derive(Debug, Clone)]
pub struct Chain1Handles {
    /// The NAT (mappings).
    pub nat: MazuNat,
    /// The load balancer (backends/connections).
    pub maglev: Maglev,
    /// The monitor (counters).
    pub monitor: Monitor,
}

/// Chain 1 of the real-world evaluation:
/// MazuNAT → Maglev → Monitor → IPFilter (the §II motivation chain).
///
/// `backends` is the Maglev pool size.
#[must_use]
pub fn chain1(backends: usize) -> (Vec<Box<dyn Nf>>, Chain1Handles) {
    let nat = MazuNat::new(Ipv4Addr::new(198, 51, 100, 1), (40000, 60000));
    let maglev = Maglev::new(
        (0..backends.max(1))
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect::<Vec<(String, _)>>(),
        251,
    );
    let monitor = Monitor::new();
    let fw = IpFilter::pass_through(30);
    let nfs: Vec<Box<dyn Nf>> = vec![
        Box::new(nat.clone()),
        Box::new(maglev.clone()),
        Box::new(monitor.clone()),
        Box::new(fw),
    ];
    (nfs, Chain1Handles { nat, maglev, monitor })
}

/// Handles into Chain 2 (§VII-B3).
#[derive(Debug, Clone)]
pub struct Chain2Handles {
    /// The IDS (shared log).
    pub snort: SnortLite,
    /// The monitor (shared counters).
    pub monitor: Monitor,
}

/// Chain 2 of the real-world evaluation: IPFilter → Snort → Monitor.
///
/// # Panics
/// Panics if the built-in rule set fails to parse (programming error).
#[must_use]
pub fn chain2() -> (Vec<Box<dyn Nf>>, Chain2Handles) {
    let fw = IpFilter::pass_through(30);
    let snort = SnortLite::from_rules_text(DEFAULT_SNORT_RULES).expect("built-in rules parse");
    let monitor = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> =
        vec![Box::new(fw), Box::new(snort.clone()), Box::new(monitor.clone())];
    (nfs, Chain2Handles { snort, monitor })
}

/// The VPN tunnel walkthrough (`examples/vpn_tunnel.rs`): tunnel ingress →
/// monitored core → tunnel egress, all on security association `spi`. The
/// in-chain encap/decap pair annihilates under consolidation, so the
/// flow's fast-path rule reduces to the monitor's counter alone.
#[must_use]
pub fn vpn_tunnel_chain(spi: u32) -> (Vec<Box<dyn Nf>>, Monitor) {
    let monitor = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> = vec![
        Box::new(VpnGateway::encap(spi)),
        Box::new(monitor.clone()),
        Box::new(VpnGateway::decap(spi)),
    ];
    (nfs, monitor)
}

/// The Fig 3 DoS-mitigation walkthrough (`examples/dos_mitigation.rs`):
/// MazuNAT followed by a DoS guard that flips the flow's rule to `drop`
/// through the Event Table once `threshold` SYNs are seen.
#[must_use]
pub fn dos_mitigation_chain(threshold: u64) -> (Vec<Box<dyn Nf>>, DosGuard) {
    let nat = MazuNat::new(Ipv4Addr::new(198, 51, 100, 1), (40000, 60000));
    let guard = DosGuard::new(threshold);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(nat), Box::new(guard.clone())];
    (nfs, guard)
}

/// The Maglev failover walkthrough (`examples/maglev_failover.rs`): a lone
/// load balancer over `backends` backends whose recurring `maglev.reroute`
/// event re-routes flows off failed backends on the fast path.
#[must_use]
pub fn maglev_failover_chain(backends: usize) -> (Vec<Box<dyn Nf>>, Maglev) {
    let maglev = Maglev::new(
        (0..backends.max(1))
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect::<Vec<(String, _)>>(),
        251,
    );
    (vec![Box::new(maglev.clone()) as Box<dyn Nf>], maglev)
}

/// The Snort inspection walkthrough (`examples/snort_inspect.rs`): the IDS
/// alone, with the default rule set — its payload-READ state function keeps
/// inspecting on the fast path.
///
/// # Panics
/// Panics if the built-in rule set fails to parse (programming error).
#[must_use]
pub fn snort_chain() -> (Vec<Box<dyn Nf>>, SnortLite) {
    let snort = SnortLite::from_rules_text(DEFAULT_SNORT_RULES).expect("built-in rules parse");
    (vec![Box::new(snort.clone()) as Box<dyn Nf>], snort)
}

/// Every chain name the CLI accepts, with the parameterized forms shown in
/// their `name:<N>` shape, plus a one-line description. `lint --all`,
/// `speedybox chains` and the simulation harness's `--all` sweep iterate
/// this.
pub const CHAIN_REGISTRY: &[(&str, &str)] = &[
    ("chain1", "MazuNAT -> Maglev -> Monitor -> IPFilter (paper §VII-B3)"),
    ("chain2", "IPFilter -> Snort -> Monitor (paper §VII-B3)"),
    ("snort-monitor", "Snort -> Monitor (paper Fig 6/7)"),
    ("ipfilter:<N>", "N pass-through firewalls (paper Fig 4/8)"),
    ("synthetic:<N>", "N Snort-like synthetic NFs (paper Fig 5)"),
    ("vpn-tunnel", "VPN encap -> Monitor -> VPN decap (in-chain annihilation)"),
    ("dos-mitigation", "MazuNAT -> DosGuard (paper Fig 3 event rewrite)"),
    ("maglev-failover", "Maglev alone with recurring reroute event"),
    ("snort", "Snort alone (payload-READ state function)"),
];

/// The concrete chain names sweep tools (`lint --all`, `sim --all`) run
/// over: every registry entry, parameterized ones pinned to representative
/// sizes.
pub const ALL_CHAINS: &[&str] = &[
    "chain1",
    "chain2",
    "snort-monitor",
    "ipfilter:3",
    "synthetic:3",
    "vpn-tunnel",
    "dos-mitigation",
    "maglev-failover",
    "snort",
];

/// Cloned handles into whichever stateful NFs a registry chain contains.
/// Our NFs share state through `Arc`, so a handle observes (and can
/// mutate — e.g. [`Maglev::fail_backend`]) the live chain. Harnesses use
/// these to inject faults and to cross-check NF-level counters.
#[derive(Debug, Clone, Default)]
pub struct ChainHooks {
    /// The NAT, when present (chain1, dos-mitigation).
    pub nat: Option<MazuNat>,
    /// The load balancer, when present (chain1, maglev-failover).
    pub maglev: Option<Maglev>,
    /// The monitor, when present.
    pub monitor: Option<Monitor>,
    /// The IDS, when present.
    pub snort: Option<SnortLite>,
    /// The DoS guard, when present (dos-mitigation).
    pub dos: Option<DosGuard>,
}

/// Builds a chain by registry name, returning the NFs plus handles to the
/// chain's stateful NFs. `ipfilter:<N>` and `synthetic:<N>` take a chain
/// length.
///
/// # Errors
/// Returns a message naming the unknown chain or the malformed length.
pub fn build_chain_hooks(name: &str) -> Result<(Vec<Box<dyn Nf>>, ChainHooks), String> {
    if let Some(n) = name.strip_prefix("ipfilter:") {
        let n: usize = n.parse().map_err(|_| format!("bad chain length in {name}"))?;
        return Ok((ipfilter_chain(n, 200), ChainHooks::default()));
    }
    if let Some(n) = name.strip_prefix("synthetic:") {
        let n: usize = n.parse().map_err(|_| format!("bad chain length in {name}"))?;
        return Ok((synthetic_sf_chain(n, 80), ChainHooks::default()));
    }
    match name {
        "chain1" => {
            let (nfs, h) = chain1(8);
            let hooks = ChainHooks {
                nat: Some(h.nat),
                maglev: Some(h.maglev),
                monitor: Some(h.monitor),
                ..ChainHooks::default()
            };
            Ok((nfs, hooks))
        }
        "chain2" => {
            let (nfs, h) = chain2();
            let hooks = ChainHooks {
                snort: Some(h.snort),
                monitor: Some(h.monitor),
                ..ChainHooks::default()
            };
            Ok((nfs, hooks))
        }
        "snort-monitor" => {
            let (nfs, h) = snort_monitor_chain();
            let hooks = ChainHooks {
                snort: Some(h.snort),
                monitor: Some(h.monitor),
                ..ChainHooks::default()
            };
            Ok((nfs, hooks))
        }
        "vpn-tunnel" => {
            let (nfs, monitor) = vpn_tunnel_chain(0x1001);
            Ok((nfs, ChainHooks { monitor: Some(monitor), ..ChainHooks::default() }))
        }
        "dos-mitigation" => {
            let (nfs, dos) = dos_mitigation_chain(5);
            Ok((nfs, ChainHooks { dos: Some(dos), ..ChainHooks::default() }))
        }
        "maglev-failover" => {
            let (nfs, maglev) = maglev_failover_chain(4);
            Ok((nfs, ChainHooks { maglev: Some(maglev), ..ChainHooks::default() }))
        }
        "snort" => {
            let (nfs, snort) = snort_chain();
            Ok((nfs, ChainHooks { snort: Some(snort), ..ChainHooks::default() }))
        }
        other => Err(format!("unknown chain: {other} (try `speedybox chains`)")),
    }
}

/// Builds a chain by registry name, discarding the handles.
///
/// # Errors
/// Returns a message naming the unknown chain or the malformed length.
pub fn build_chain(name: &str) -> Result<Vec<Box<dyn Nf>>, String> {
    build_chain_hooks(name).map(|(nfs, _)| nfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_build_with_hooks() {
        for name in ALL_CHAINS {
            let (nfs, _) = build_chain_hooks(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!nfs.is_empty(), "{name} built an empty chain");
        }
        assert!(build_chain_hooks("nope").is_err());
        assert!(build_chain_hooks("ipfilter:x").is_err());
    }

    #[test]
    fn hooks_expose_the_expected_nfs() {
        let (_, h) = build_chain_hooks("chain1").unwrap();
        assert!(h.nat.is_some() && h.maglev.is_some() && h.monitor.is_some());
        let (_, h) = build_chain_hooks("dos-mitigation").unwrap();
        assert!(h.dos.is_some());
        let (_, h) = build_chain_hooks("ipfilter:2").unwrap();
        assert!(h.nat.is_none() && h.maglev.is_none());
    }

    #[test]
    fn builders_produce_expected_lengths() {
        assert_eq!(ipfilter_chain(3, 10).len(), 3);
        assert_eq!(synthetic_sf_chain(2, 5).len(), 2);
        assert_eq!(snort_monitor_chain().0.len(), 2);
        assert_eq!(chain1(4).0.len(), 4);
        assert_eq!(chain2().0.len(), 3);
        assert_eq!(vpn_tunnel_chain(0x1001).0.len(), 3);
        assert_eq!(dos_mitigation_chain(5).0.len(), 2);
        assert_eq!(maglev_failover_chain(4).0.len(), 1);
        assert_eq!(snort_chain().0.len(), 1);
    }

    #[test]
    fn handles_observe_chain_state() {
        use speedybox_packet::PacketBuilder;

        use crate::bess::BessChain;

        let (nfs, handles) = chain2();
        let mut chain = BessChain::speedybox(nfs);
        let pkts: Vec<_> = (0..5)
            .map(|i| {
                PacketBuilder::tcp()
                    .src("10.0.0.1:1234".parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .payload(format!("pkt {i} with evil inside").as_bytes())
                    .build()
            })
            .collect();
        chain.run(pkts);
        assert_eq!(handles.monitor.flow_count(), 1);
        assert_eq!(handles.snort.log().len(), 5, "every packet matched the alert rule");
    }
}
