//! The OpenNetVM-style execution environment (paper §VI-A).
//!
//! OpenNetVM "runs each NF on one dedicated core, and interconnects NFs
//! leveraging RX/TX queues that deliver shared memory packet descriptors".
//! Two consequences the paper leans on:
//!
//! * throughput is set by the slowest *stage* (pipelining) — chain length
//!   barely moves the rate (Figs 5a, 6b, 8);
//! * latency pays an inter-core ring hop per NF boundary — which is why
//!   consolidation (which keeps subsequent packets on the manager core)
//!   helps latency even more here (Fig 7's larger SF share).
//!
//! [`OnvmChain`] is the deterministic model used by the figure harness;
//! [`crate::threaded`] is a real thread-per-NF implementation of the same
//! architecture used by integration tests and wall-clock benches.

use std::sync::Arc;

use speedybox_mat::{Classification, ClassifyScratch, OpCounter, PacketClass};
use speedybox_nf::Nf;
use speedybox_packet::{Fid, Magazine, Packet, PacketError, PacketPool, PoolStats};
use speedybox_telemetry::Telemetry;

use crate::bess::BatchState;
use crate::cycles::CycleModel;
use crate::metrics::{observe, PathKind, ProcessedPacket, RunStats};
use crate::runtime::{
    classify, fast_path, fast_path_cached, notify_flow_closed, tag_ingress, traverse_chain,
    FastPathScratch, SboxConfig, SpeedyBox,
};
use crate::supervisor::{default_log_bound, Supervisor};

/// A service chain running in the OpenNetVM-style pipelined environment.
#[derive(Debug)]
pub struct OnvmChain {
    nfs: Vec<Box<dyn Nf>>,
    model: CycleModel,
    sbox: Option<SpeedyBox>,
    /// Per-stage cycle totals: index 0 = manager (RX/classifier/Global
    /// MAT), 1..=N the NFs.
    stage_cycles: Vec<u64>,
    /// Per-worker cycle totals under symmetric run-to-completion steering:
    /// each packet's full work is attributed to the worker owning its FID
    /// slice (`fid & (workers - 1)`). One entry for baseline chains.
    worker_cycles: Vec<u64>,
    /// Modeled wall cycles across the workers: per batch, the busiest
    /// worker's share (see [`RunStats::worker_wall_cycles`]).
    worker_wall: u64,
    /// Live counters. Shared with `sbox.telemetry` when SpeedyBox is on;
    /// a private hub for baseline chains.
    telemetry: Arc<Telemetry>,
    /// The chain's packet-buffer pool; dropped packets are recycled here.
    pool: Arc<PacketPool>,
    /// The chain's own magazine fronting `pool`.
    mag: Magazine,
    /// Pool counters as of the last telemetry sync.
    pool_seen: PoolStats,
    /// Persistent per-batch scratch (see [`crate::bess::BessChain`]).
    fp_scratch: FastPathScratch,
    cls_scratch: ClassifyScratch,
    classified: Vec<Result<Classification, PacketError>>,
    fast_fids: Vec<Fid>,
    ops_scratch: Vec<OpCounter>,
    before_cycles: Vec<u64>,
    batch_scratch: BatchState,
    /// NF crash/restart supervision (checkpoints + in-flight log).
    /// `None` unless [`SboxConfig::checkpoint_interval`] is non-zero or
    /// [`OnvmChain::enable_supervision`] was called.
    supervisor: Option<Supervisor>,
}

impl OnvmChain {
    /// The original (uninstrumented) chain — the paper's `ONVM` baseline.
    #[must_use]
    pub fn original(nfs: Vec<Box<dyn Nf>>) -> Self {
        let stages = nfs.len() + 1;
        let pool = Arc::new(PacketPool::default());
        Self {
            nfs,
            model: CycleModel::new(),
            sbox: None,
            stage_cycles: vec![0; stages],
            worker_cycles: vec![0; 1],
            worker_wall: 0,
            telemetry: Arc::new(Telemetry::new(1)),
            mag: Magazine::new(Arc::clone(&pool)),
            pool,
            pool_seen: PoolStats::default(),
            fp_scratch: FastPathScratch::default(),
            cls_scratch: ClassifyScratch::default(),
            classified: Vec::new(),
            fast_fids: Vec::new(),
            ops_scratch: Vec::new(),
            before_cycles: Vec::new(),
            batch_scratch: BatchState::default(),
            supervisor: None,
        }
    }

    /// The chain's live telemetry hub.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The chain's packet-buffer pool (see [`crate::bess::BessChain::pool`]).
    #[must_use]
    pub fn pool(&self) -> &Arc<PacketPool> {
        &self.pool
    }

    /// Folds pool-counter deltas since the last sync into the telemetry
    /// hub (shard 0: pool traffic is chain-global, not per-flow).
    fn sync_pool_telemetry(&mut self) {
        let now = self.pool.stats();
        let seen = self.pool_seen;
        let shard = self.telemetry.shard(0);
        shard.add_pool_hits(now.hits - seen.hits);
        shard.add_pool_misses(now.misses - seen.misses);
        shard.add_pool_recycled(now.recycled - seen.recycled);
        shard.add_pool_refills(now.refills - seen.refills);
        shard.add_pool_flushes(now.flushes - seen.flushes);
        shard.set_pool_depth(now.depth);
        self.pool_seen = now;
    }

    /// The chain with SpeedyBox — the paper's `ONVM w/ SBox`. The Global
    /// MAT lives at the NF Manager and the classifier at the manager's RX
    /// thread (§VI-A).
    #[must_use]
    pub fn speedybox(nfs: Vec<Box<dyn Nf>>) -> Self {
        Self::speedybox_with(nfs, SboxConfig::default())
    }

    /// SpeedyBox with explicit optimization knobs.
    #[must_use]
    pub fn speedybox_with(nfs: Vec<Box<dyn Nf>>, config: SboxConfig) -> Self {
        let stages = nfs.len() + 1;
        let pool = Arc::new(PacketPool::bounded(2048, config.pool_buffers));
        let sbox = SpeedyBox::new(nfs.len(), config);
        let telemetry = Arc::clone(&sbox.telemetry);
        let supervisor = (config.checkpoint_interval > 0).then(|| {
            Supervisor::new(
                &nfs,
                config.checkpoint_interval,
                default_log_bound(config.checkpoint_interval),
            )
        });
        Self {
            nfs,
            model: CycleModel::new(),
            sbox: Some(sbox),
            stage_cycles: vec![0; stages],
            worker_cycles: vec![0; config.worker_count()],
            worker_wall: 0,
            telemetry,
            mag: Magazine::new(Arc::clone(&pool)),
            pool,
            pool_seen: PoolStats::default(),
            fp_scratch: FastPathScratch::default(),
            cls_scratch: ClassifyScratch::default(),
            classified: Vec::new(),
            fast_fids: Vec::new(),
            ops_scratch: Vec::new(),
            before_cycles: Vec::new(),
            batch_scratch: BatchState::default(),
            supervisor,
        }
    }

    /// Replaces the cycle model.
    #[must_use]
    pub fn with_model(mut self, model: CycleModel) -> Self {
        self.model = model;
        self
    }

    /// The cycle model in use.
    #[must_use]
    pub fn model(&self) -> &CycleModel {
        &self.model
    }

    /// Number of NFs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True if the chain has no NFs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// The SpeedyBox runtime, if enabled.
    #[must_use]
    pub fn sbox(&self) -> Option<&SpeedyBox> {
        self.sbox.as_ref()
    }

    /// Mutable access to the SpeedyBox runtime (fault-injection harnesses
    /// flip execution modes between packets).
    pub fn sbox_mut(&mut self) -> Option<&mut SpeedyBox> {
        self.sbox.as_mut()
    }

    /// Flips the fast path between compiled and interpreted header-action
    /// execution. No-op on a baseline chain. Safe between packets — see
    /// [`SpeedyBox::set_compiled`].
    pub fn set_compiled(&mut self, compiled: bool) {
        if let Some(sbox) = self.sbox.as_mut() {
            sbox.set_compiled(compiled);
        }
    }

    /// Turns NF crash/restart supervision on (or re-tunes it): takes an
    /// immediate chain-consistent checkpoint and starts the bounded
    /// in-flight log. Idempotent; `interval`/`log_bound` of 0 clamp to 1.
    pub fn enable_supervision(&mut self, interval: u64, log_bound: usize) {
        self.supervisor = Some(Supervisor::new(&self.nfs, interval, log_bound));
    }

    /// Whether NF crash/restart supervision is active.
    #[must_use]
    pub fn supervised(&self) -> bool {
        self.supervisor.is_some()
    }

    /// Takes an on-demand chain-consistent checkpoint (the sim harness's
    /// `snap@N` fault). No-op without supervision.
    pub fn checkpoint_now(&mut self) {
        if let Some(sup) = self.supervisor.as_mut() {
            sup.checkpoint(&self.nfs);
            self.telemetry.shard(0).add_snapshots_taken(1);
        }
    }

    /// Handles a crash of NF `nf`: quarantines its consolidated rules in
    /// the Global MAT (the fast path falls back to the original walk),
    /// sweeps all fast-path flow state, rolls the whole chain back to the
    /// last chain-consistent checkpoint, and replays the bounded in-flight
    /// log — so post-recovery NF state matches a crash-free run exactly.
    /// `replay: false` is the seeded-bug mutation (`skip-snapshot-replay`)
    /// that the sim oracle must flag. Returns the replay depth. No-op
    /// without supervision.
    pub fn kill_nf(&mut self, nf: usize, replay: bool) -> usize {
        let Some(sup) = self.supervisor.as_mut() else {
            return 0;
        };
        if let Some(sbox) = self.sbox.as_ref() {
            // Mask first, then sweep: a reader that races the sweep hits
            // the mask and falls back to the original walk.
            sbox.global.quarantine_nf(nf);
            sbox.force_evict_flows(usize::MAX);
        }
        // The prefetched rule cache may hold pre-crash handles.
        self.batch_scratch.cache.clear();
        self.batch_scratch.stale.clear();
        self.batch_scratch.last = None;
        let depth = sup.kill(&mut self.nfs, replay);
        let shard = self.telemetry.shard(0);
        shard.add_nf_kills(1);
        shard.add_replay_depth(depth as u64);
        // `kill` ends with a fresh post-recovery checkpoint.
        shard.add_snapshots_taken(1);
        depth
    }

    /// Closes NF `nf`'s quarantine window: consolidated rules may be
    /// installed and served again, and quarantined flows re-record on
    /// their next packet. No-op without supervision.
    pub fn recover_nf(&mut self, nf: usize) {
        if self.supervisor.is_none() {
            return;
        }
        if let Some(sbox) = self.sbox.as_ref() {
            sbox.global.unquarantine_nf(nf);
        }
        self.telemetry.shard(0).add_nf_recoveries(1);
    }

    /// Logs a non-packet NF state mutation (e.g. a backend health flip)
    /// into the in-flight log so crash replay reproduces it in order.
    /// No-op without supervision.
    pub fn log_external(&mut self, event: Arc<dyn Fn() + Send + Sync>) {
        if let Some(sup) = self.supervisor.as_mut() {
            sup.log_external(event);
        }
    }

    /// Attributes `work` to the run-to-completion worker owning the FID
    /// slice of `fid_hint` (RSS-style steering: `fid & (workers - 1)`).
    fn attribute_worker(&mut self, fid_hint: u64, work: u64) {
        // Masked by the (power-of-two) worker count, so the cast cannot lose
        // anything the mask keeps.
        #[allow(clippy::cast_possible_truncation)]
        let w = (fid_hint as usize) & (self.worker_cycles.len() - 1);
        self.worker_cycles[w] += work;
    }

    /// Processes one packet.
    pub fn process(&mut self, mut packet: Packet) -> ProcessedPacket {
        match &self.sbox {
            None => {
                // Baseline: manager RX tags the packet, then it rides the
                // rings through every NF core.
                let mut entry_ops = OpCounter::default();
                tag_ingress(&mut packet, &mut entry_ops);
                let entry_cycles = self.model.cycles(&entry_ops);
                self.stage_cycles[0] += entry_cycles;
                let res = traverse_chain(&mut self.nfs, None, &mut packet, &self.model);
                for (i, &c) in res.per_nf_cycles.iter().enumerate() {
                    self.stage_cycles[i + 1] += c;
                }
                // One ring hop into each NF reached, plus one back to TX if
                // the packet survived.
                let traversed = res.per_nf_cycles.iter().filter(|&&c| c > 0).count() as u64;
                let hop_count = traversed + u64::from(res.survived);
                let mut ops = entry_ops;
                ops.merge(&res.ops);
                ops.ring_hops += hop_count;
                let work = entry_cycles
                    + res.per_nf_cycles.iter().sum::<u64>()
                    + hop_count * self.model.ring_hop;
                let latency = work + hop_count * self.model.ring_transit;
                if packet.tcp_flags().closes_flow() {
                    if let Some(fid) = packet.fid() {
                        notify_flow_closed(&mut self.nfs, fid);
                    }
                }
                let hint = packet.fid().map_or(0, |f| f.index() as u64);
                let outcome = ProcessedPacket {
                    packet: if res.survived {
                        packet.clear_fid();
                        Some(packet)
                    } else {
                        self.mag.give_packet(packet);
                        None
                    },
                    work_cycles: work,
                    latency_cycles: latency,
                    path: PathKind::Baseline,
                    ops,
                };
                observe(&self.telemetry, hint, &outcome);
                self.attribute_worker(hint, outcome.work_cycles);
                self.worker_wall += outcome.work_cycles;
                outcome
            }
            Some(_) => self.process_speedybox(packet),
        }
    }

    fn process_speedybox(&mut self, mut packet: Packet) -> ProcessedPacket {
        let sbox = self.sbox.as_ref().expect("speedybox enabled");
        let mut cls_ops = OpCounter::default();
        let outcome = match classify(sbox, &mut packet, &mut cls_ops) {
            Err(_) => {
                self.mag.give_packet(packet);
                self.classifier_drop(cls_ops)
            }
            Ok((fid, class, closes_flow)) => {
                self.finish_speedybox(packet, fid, class, closes_flow, cls_ops, &mut None)
            }
        };
        // Per-packet mode: the owning worker is busy for the whole packet
        // while the others idle, so wall time is the packet's own work.
        self.worker_wall += outcome.work_cycles;
        // Per-packet mode is a batch of one: the idle-eviction tick runs
        // at the same boundary. O(1) unless flows are actually due.
        if let Some(sbox) = &self.sbox {
            sbox.tick_idle_eviction();
        }
        outcome
    }

    fn classifier_drop(&mut self, mut cls_ops: OpCounter) -> ProcessedPacket {
        cls_ops.drops += 1;
        let cycles = self.model.cycles(&cls_ops);
        self.stage_cycles[0] += cycles;
        let outcome = ProcessedPacket {
            packet: None,
            work_cycles: cycles,
            latency_cycles: cycles,
            path: PathKind::Initial,
            ops: cls_ops,
        };
        observe(&self.telemetry, 0, &outcome);
        // Parse failures carry no FID; worker 0 owns them by convention.
        self.attribute_worker(0, outcome.work_cycles);
        outcome
    }

    /// Everything after classification, shared by the per-packet and
    /// batched paths (see [`crate::bess::BessChain::finish_speedybox`]'s
    /// twin for the batching contract).
    fn finish_speedybox(
        &mut self,
        mut packet: Packet,
        fid: Fid,
        class: PacketClass,
        closes_flow: bool,
        cls_ops: OpCounter,
        batch: &mut Option<BatchState>,
    ) -> ProcessedPacket {
        // Supervision first (NF state has not mutated yet): log the frame
        // and its teardown decision for crash replay.
        if let Some(sup) = self.supervisor.as_mut() {
            let teardown = closes_flow && class != PacketClass::Collision;
            if sup.note_packet(packet.as_bytes(), teardown, &self.nfs) {
                self.telemetry.shard(0).add_snapshots_taken(1);
            }
        }
        let sbox = self.sbox.as_ref().expect("speedybox enabled");
        // Open quarantine window: would-be fast-path packets ride the
        // uninstrumented original walk instead — no recording (pre-crash
        // recordings are untrusted), no install (the MAT gate refuses
        // anyway), exactly the Handshake arm below.
        let class = if sbox.global.is_quarantined()
            && matches!(class, PacketClass::Initial | PacketClass::Subsequent)
        {
            self.telemetry.shard(fid.index() as u64).add_quarantine_packets(1);
            PacketClass::Handshake
        } else {
            class
        };
        let cls_cycles = self.model.cycles(&cls_ops);
        self.stage_cycles[0] += cls_cycles;

        let outcome = match class {
            PacketClass::Initial => {
                let res = {
                    let instruments = sbox.instruments.clone();
                    traverse_chain(&mut self.nfs, Some(&instruments), &mut packet, &self.model)
                };
                for (i, &c) in res.per_nf_cycles.iter().enumerate() {
                    self.stage_cycles[i + 1] += c;
                }
                let sbox = self.sbox.as_ref().expect("speedybox enabled");
                let mut install_ops = OpCounter::default();
                sbox.global.install(fid, &mut install_ops);
                if let Some(bs) = batch {
                    bs.stale.insert(fid);
                    bs.forget(fid);
                }
                // Consolidation "involves inter-core communication": one
                // message hop per Local MAT back to the manager (§VI-A).
                install_ops.ring_hops += self.nfs.len() as u64;
                let install_cycles = self.model.cycles(&install_ops);
                self.stage_cycles[0] += install_cycles;
                // Data-path ring hops for the packet itself.
                let traversed = res.per_nf_cycles.iter().filter(|&&c| c > 0).count() as u64;
                let hop_count = traversed + u64::from(res.survived);
                let mut ops = cls_ops;
                ops.merge(&res.ops);
                ops.merge(&install_ops);
                ops.ring_hops += hop_count;
                let work = cls_cycles
                    + res.per_nf_cycles.iter().sum::<u64>()
                    + install_cycles
                    + hop_count * self.model.ring_hop;
                let latency = work + hop_count * self.model.ring_transit;
                ProcessedPacket {
                    packet: if res.survived {
                        packet.clear_fid();
                        Some(packet)
                    } else {
                        self.mag.give_packet(packet);
                        None
                    },
                    work_cycles: work,
                    latency_cycles: latency,
                    path: PathKind::Initial,
                    ops,
                }
            }
            PacketClass::Collision | PacketClass::Handshake | PacketClass::Rejected => {
                // Colliding, pre-handshake or capacity-rejected packet:
                // original chain, uninstrumented.
                let res = traverse_chain(&mut self.nfs, None, &mut packet, &self.model);
                for (i, &c) in res.per_nf_cycles.iter().enumerate() {
                    self.stage_cycles[i + 1] += c;
                }
                let traversed = res.per_nf_cycles.iter().filter(|&&c| c > 0).count() as u64;
                let hop_count = traversed + u64::from(res.survived);
                let mut ops = cls_ops;
                ops.merge(&res.ops);
                ops.ring_hops += hop_count;
                let work = cls_cycles
                    + res.per_nf_cycles.iter().sum::<u64>()
                    + hop_count * self.model.ring_hop;
                let latency = work + hop_count * self.model.ring_transit;
                ProcessedPacket {
                    packet: if res.survived {
                        packet.clear_fid();
                        Some(packet)
                    } else {
                        self.mag.give_packet(packet);
                        None
                    },
                    work_cycles: work,
                    latency_cycles: latency,
                    path: PathKind::Baseline,
                    ops,
                }
            }
            PacketClass::Subsequent => {
                let fp = match batch.as_mut() {
                    Some(bs) if !bs.stale.contains(&fid) => {
                        let memo_hit = bs.last.as_ref().is_some_and(|(lf, _)| *lf == fid);
                        let handle = if memo_hit {
                            bs.last.as_ref().map(|(_, r)| r)
                        } else {
                            bs.cache.get(&fid)
                        };
                        let (res, fired) = fast_path_cached(
                            sbox,
                            &mut packet,
                            fid,
                            &self.model,
                            handle,
                            &mut self.fp_scratch,
                        );
                        if fired {
                            bs.stale.insert(fid);
                            bs.last = None;
                        } else if !memo_hit {
                            if let Some(r) = bs.cache.get(&fid) {
                                bs.last = Some((fid, Arc::clone(r)));
                            }
                        }
                        res
                    }
                    _ => fast_path(sbox, &mut packet, fid, &self.model, &mut self.fp_scratch),
                };
                match fp {
                    Some(res) => {
                        // The fast path's control part runs on the manager
                        // core with no data-path ring hops (the R4 saving);
                        // state-function batches are dispatched to the owning
                        // NFs' cores, which is what keeps the manager stage —
                        // and therefore throughput — independent of chain
                        // depth.
                        let dispatched: u64 = if sbox.config.parallelize_sf {
                            self.fp_scratch.attr.iter().map(|&(_, c)| c).sum()
                        } else {
                            0
                        };
                        self.stage_cycles[0] += res.work_cycles - dispatched;
                        if sbox.config.parallelize_sf {
                            for &(nf, c) in &self.fp_scratch.attr {
                                self.stage_cycles[nf.index() + 1] += c;
                            }
                        }
                        let mut ops = cls_ops;
                        ops.merge(&res.ops);
                        ProcessedPacket {
                            packet: if res.survived {
                                packet.clear_fid();
                                Some(packet)
                            } else {
                                self.mag.give_packet(packet);
                                None
                            },
                            work_cycles: cls_cycles + res.work_cycles,
                            latency_cycles: cls_cycles + res.latency_cycles,
                            path: PathKind::Subsequent,
                            ops,
                        }
                    }
                    None => {
                        let res = {
                            let instruments = sbox.instruments.clone();
                            traverse_chain(
                                &mut self.nfs,
                                Some(&instruments),
                                &mut packet,
                                &self.model,
                            )
                        };
                        for (i, &c) in res.per_nf_cycles.iter().enumerate() {
                            self.stage_cycles[i + 1] += c;
                        }
                        let sbox = self.sbox.as_ref().expect("speedybox enabled");
                        let mut install_ops = OpCounter::default();
                        sbox.global.install(fid, &mut install_ops);
                        if let Some(bs) = batch {
                            bs.stale.insert(fid);
                            bs.forget(fid);
                        }
                        let cycles = cls_cycles
                            + res.per_nf_cycles.iter().sum::<u64>()
                            + self.model.cycles(&install_ops);
                        let mut ops = cls_ops;
                        ops.merge(&res.ops);
                        ProcessedPacket {
                            packet: if res.survived {
                                packet.clear_fid();
                                Some(packet)
                            } else {
                                self.mag.give_packet(packet);
                                None
                            },
                            work_cycles: cycles,
                            latency_cycles: cycles,
                            path: PathKind::Initial,
                            ops,
                        }
                    }
                }
            }
        };

        if closes_flow && class != PacketClass::Collision {
            let sbox = self.sbox.as_ref().expect("speedybox enabled");
            match batch {
                None => sbox.remove_flow(fid),
                Some(bs) => {
                    // The classifier entry was already removed inline by
                    // `classify_batch`.
                    sbox.global.remove_flow(fid);
                    bs.stale.insert(fid);
                    bs.forget(fid);
                }
            }
            notify_flow_closed(&mut self.nfs, fid);
        }
        observe(&self.telemetry, fid.index() as u64, &outcome);
        self.attribute_worker(fid.index() as u64, outcome.work_cycles);
        outcome
    }

    /// Processes a batch of packets with amortized generation loads;
    /// results are identical to calling [`OnvmChain::process`] in order.
    /// Each packet's work is attributed to the worker owning its FID
    /// slice; the batch's modeled wall time is the busiest worker's share.
    pub fn process_batch(&mut self, packets: Vec<Packet>) -> Vec<ProcessedPacket> {
        let mut packets = packets;
        let mut out = Vec::with_capacity(packets.len());
        self.process_batch_into(&mut packets, &mut out);
        out
    }

    /// Allocation-free variant of [`OnvmChain::process_batch`]: drains
    /// `packets` into `out` (cleared first) while reusing the chain's
    /// persistent per-batch scratch (see
    /// [`crate::bess::BessChain::process_batch_into`]).
    pub fn process_batch_into(
        &mut self,
        packets: &mut Vec<Packet>,
        out: &mut Vec<ProcessedPacket>,
    ) {
        out.clear();
        if self.sbox.is_none() {
            out.extend(packets.drain(..).map(|p| self.process(p)));
            self.sync_pool_telemetry();
            return;
        }
        let n = packets.len();
        self.ops_scratch.clear();
        self.ops_scratch.resize(n, OpCounter::default());
        let mut bs = std::mem::take(&mut self.batch_scratch);
        let mut classified = std::mem::take(&mut self.classified);
        let mut fast_fids = std::mem::take(&mut self.fast_fids);
        let mut cls_scratch = std::mem::take(&mut self.cls_scratch);
        let mut ops = std::mem::take(&mut self.ops_scratch);
        {
            let sbox = self.sbox.as_ref().expect("speedybox enabled");
            sbox.classifier.classify_batch_into(
                packets,
                &mut ops,
                &mut classified,
                &mut cls_scratch,
            );
            fast_fids.clear();
            fast_fids.extend(
                classified
                    .iter()
                    .filter_map(|r| r.as_ref().ok())
                    .filter(|c| c.class == PacketClass::Subsequent)
                    .map(|c| c.fid),
            );
            sbox.global.prefetch_into(&fast_fids, &mut bs.cache);
        }
        bs.stale.clear();
        bs.last = None;
        self.before_cycles.clear();
        self.before_cycles.extend_from_slice(&self.worker_cycles);
        let mut batch = Some(bs);
        for ((pkt, cls), cls_ops) in packets.drain(..).zip(classified.iter()).zip(ops.iter()) {
            let outcome = match cls {
                Err(_) => {
                    self.mag.give_packet(pkt);
                    self.classifier_drop(*cls_ops)
                }
                Ok(c) => {
                    self.finish_speedybox(pkt, c.fid, c.class, c.closes_flow, *cls_ops, &mut batch)
                }
            };
            out.push(outcome);
        }
        self.batch_scratch = batch.take().expect("batch state survives the batch");
        self.classified = classified;
        self.fast_fids = fast_fids;
        self.cls_scratch = cls_scratch;
        self.ops_scratch = ops;
        // Symmetric workers drain their slices of the batch concurrently;
        // the busiest worker bounds the batch's wall time.
        self.worker_wall += self
            .worker_cycles
            .iter()
            .zip(&self.before_cycles)
            .map(|(after, before)| after - before)
            .max()
            .unwrap_or(0);
        // Batch-boundary idle eviction (control plane, not packet work).
        if let Some(sbox) = &self.sbox {
            sbox.tick_idle_eviction();
        }
        self.sync_pool_telemetry();
    }

    /// Runs a sequence of packets, collecting statistics (including the
    /// per-stage cycle totals used for the pipelined rate). Stage totals
    /// cover only this run, so warmup runs don't skew the rate. Processes
    /// in batches of the configured [`SboxConfig::batch_size`] (per-packet
    /// when 1 or when SpeedyBox is off).
    pub fn run(&mut self, packets: impl IntoIterator<Item = Packet>) -> RunStats {
        let batch_size = self.sbox.as_ref().map_or(1, |s| s.config.batch_size);
        if batch_size > 1 {
            return self.run_batched(packets, batch_size);
        }
        let before = self.stage_cycles.clone();
        let workers_before = self.worker_cycles.clone();
        let wall_before = self.worker_wall;
        let mut stats = RunStats::default();
        for p in packets {
            stats.record(self.process(p));
        }
        stats.stage_cycles = self.stage_cycles.iter().zip(&before).map(|(a, b)| a - b).collect();
        stats.worker_cycles =
            self.worker_cycles.iter().zip(&workers_before).map(|(a, b)| a - b).collect();
        stats.worker_wall_cycles = self.worker_wall - wall_before;
        self.sync_pool_telemetry();
        stats
    }

    /// Runs a sequence of packets in batches of `batch_size`; results are
    /// identical to [`OnvmChain::run`] — batching only amortizes
    /// table-lock acquisitions.
    pub fn run_batched(
        &mut self,
        packets: impl IntoIterator<Item = Packet>,
        batch_size: usize,
    ) -> RunStats {
        let batch_size = batch_size.max(1);
        let before = self.stage_cycles.clone();
        let workers_before = self.worker_cycles.clone();
        let wall_before = self.worker_wall;
        let mut stats = RunStats::default();
        // Persistent input/outcome buffers: `process_batch_into` drains
        // one and refills the other, so neither reallocates once warm.
        let mut buf = Vec::with_capacity(batch_size);
        let mut out = Vec::with_capacity(batch_size);
        for p in packets {
            buf.push(p);
            if buf.len() == batch_size {
                self.process_batch_into(&mut buf, &mut out);
                for outcome in out.drain(..) {
                    stats.record(outcome);
                }
            }
        }
        if !buf.is_empty() {
            self.process_batch_into(&mut buf, &mut out);
            for outcome in out.drain(..) {
                stats.record(outcome);
            }
        }
        stats.stage_cycles = self.stage_cycles.iter().zip(&before).map(|(a, b)| a - b).collect();
        stats.worker_cycles =
            self.worker_cycles.iter().zip(&workers_before).map(|(a, b)| a - b).collect();
        stats.worker_wall_cycles = self.worker_wall - wall_before;
        stats
    }
}

#[cfg(test)]
mod tests {
    use speedybox_nf::ipfilter::IpFilter;
    use speedybox_nf::monitor::Monitor;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packets(flow_port: u16, n: usize) -> Vec<Packet> {
        (0..n)
            .map(|_| {
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{flow_port}").parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .payload(b"data")
                    .build()
            })
            .collect()
    }

    fn fw_chain(n: usize) -> Vec<Box<dyn Nf>> {
        (0..n).map(|_| Box::new(IpFilter::pass_through(30)) as Box<dyn Nf>).collect()
    }

    #[test]
    fn kill_quarantines_then_recover_republishes() {
        let mon = Monitor::new();
        let nfs: Vec<Box<dyn Nf>> = vec![Box::new(mon.clone())];
        let config = SboxConfig { checkpoint_interval: 4, ..SboxConfig::default() };
        let mut chain = OnvmChain::speedybox_with(nfs, config);
        assert!(chain.supervised());
        chain.run(packets(1000, 6));
        let fid = {
            let p = packets(1000, 1).pop().unwrap();
            p.five_tuple().unwrap().fid()
        };
        let before = mon.counters(fid).unwrap();

        let depth = chain.kill_nf(0, true);
        assert!(depth > 0, "in-flight packets must replay");
        assert_eq!(
            mon.counters(fid).unwrap(),
            before,
            "rollback + replay reconstructs the crash-free state"
        );
        let sbox = chain.sbox().unwrap();
        assert!(sbox.global.is_quarantined());
        assert!(sbox.classifier.is_empty(), "fast-path flow state swept");

        // Open window: everything rides the uninstrumented original walk.
        let stats = chain.run(packets(1000, 3));
        assert_eq!(stats.path_counts, [3, 0, 0]);

        chain.recover_nf(0);
        assert!(!chain.sbox().unwrap().global.is_quarantined());
        // Post-window: the flow re-records organically, then rides the
        // fast path again — and the monitor saw every packet exactly once.
        let stats = chain.run(packets(1000, 4));
        assert_eq!(stats.path_counts, [0, 1, 3]);
        assert_eq!(mon.counters(fid).unwrap().packets, before.packets + 3 + 4);

        let snap = chain.telemetry().snapshot();
        assert_eq!(snap.nf_kills, 1);
        assert_eq!(snap.nf_recoveries, 1);
        assert_eq!(snap.replay_depth, depth as u64);
        assert_eq!(snap.quarantine_packets, 3);
        assert!(snap.snapshots_taken >= 2, "initial + post-recovery checkpoints");
    }

    #[test]
    fn skipping_replay_diverges() {
        let mon = Monitor::new();
        let nfs: Vec<Box<dyn Nf>> = vec![Box::new(mon.clone())];
        let config = SboxConfig { checkpoint_interval: 100, ..SboxConfig::default() };
        let mut chain = OnvmChain::speedybox_with(nfs, config);
        chain.run(packets(1000, 5));
        let fid = {
            let p = packets(1000, 1).pop().unwrap();
            p.five_tuple().unwrap().fid()
        };
        let before = mon.counters(fid).unwrap();
        chain.kill_nf(0, false);
        assert!(
            mon.counters(fid).is_none_or(|c| c.packets < before.packets),
            "the seeded recovery bug must lose in-flight state"
        );
    }

    #[test]
    fn baseline_latency_grows_with_chain_length() {
        let l3 = OnvmChain::original(fw_chain(3)).run(packets(1000, 10)).mean_latency_cycles();
        let l1 = OnvmChain::original(fw_chain(1)).run(packets(1000, 10)).mean_latency_cycles();
        assert!(l3 > 2.0 * l1, "pipelined latency must grow with length: {l1} vs {l3}");
    }

    #[test]
    fn baseline_rate_is_stable_across_lengths() {
        let model = CycleModel::new();
        let r1 =
            OnvmChain::original(fw_chain(1)).run(packets(1000, 50)).pipelined_rate_mpps(&model);
        let r5 =
            OnvmChain::original(fw_chain(5)).run(packets(1000, 50)).pipelined_rate_mpps(&model);
        // Identical NFs: bottleneck stage cost unchanged -> rate ~flat.
        assert!((r1 - r5).abs() / r1 < 0.15, "pipelined rate should be ~flat: {r1} vs {r5}");
    }

    #[test]
    fn speedybox_latency_is_flat_across_lengths() {
        let pkts = packets(1000, 100);
        let l1 = OnvmChain::speedybox(fw_chain(1)).run(pkts.clone()).mean_latency_cycles();
        let l5 = OnvmChain::speedybox(fw_chain(5)).run(pkts).mean_latency_cycles();
        // Subsequent packets dominate; their cost is length-independent.
        assert!(l5 < 1.6 * l1, "SpeedyBox latency must be ~flat: {l1} vs {l5}");
    }

    #[test]
    fn speedybox_cuts_onvm_latency_more_than_bess() {
        // The ring hops removed by consolidation are ONVM-only costs, so
        // the relative latency cut should be at least as large as BESS's.
        let pkts = packets(1000, 100);
        let onvm_orig = OnvmChain::original(fw_chain(3)).run(pkts.clone()).mean_latency_cycles();
        let onvm_sbox = OnvmChain::speedybox(fw_chain(3)).run(pkts.clone()).mean_latency_cycles();
        let bess_orig =
            crate::bess::BessChain::original(fw_chain(3)).run(pkts.clone()).mean_latency_cycles();
        let bess_sbox =
            crate::bess::BessChain::speedybox(fw_chain(3)).run(pkts).mean_latency_cycles();
        let onvm_cut = 1.0 - onvm_sbox / onvm_orig;
        let bess_cut = 1.0 - bess_sbox / bess_orig;
        assert!(onvm_cut > bess_cut, "ONVM cut {onvm_cut:.2} vs BESS cut {bess_cut:.2}");
    }

    #[test]
    fn outputs_match_baseline() {
        let pkts = packets(1000, 20);
        let so = OnvmChain::original(fw_chain(2)).run(pkts.clone());
        let sf = OnvmChain::speedybox(fw_chain(2)).run(pkts);
        assert_eq!(so.outputs.len(), sf.outputs.len());
        for (a, b) in so.outputs.iter().zip(&sf.outputs) {
            assert_eq!(a.as_bytes(), b.as_bytes());
        }
    }

    #[test]
    fn stage_cycles_cover_all_stages() {
        let mut chain = OnvmChain::original(fw_chain(3));
        let stats = chain.run(packets(1000, 5));
        assert_eq!(stats.stage_cycles.len(), 4);
        // Every NF stage did work; the baseline manager stage only tags
        // packets (cost-free harness bookkeeping).
        assert!(stats.stage_cycles[1..].iter().all(|&c| c > 0));
    }

    #[test]
    fn fast_path_keeps_nf_stages_idle() {
        let mut chain = OnvmChain::speedybox(fw_chain(2));
        let stats = chain.run(packets(1000, 50));
        // NF stages only saw the single initial packet.
        let manager = stats.stage_cycles[0];
        let nf_total: u64 = stats.stage_cycles[1..].iter().sum();
        assert!(manager > nf_total, "manager {manager} should dominate NF stages {nf_total}");
    }
}
