//! Cross-crate integration: the threaded OpenNetVM runtime, cross-
//! environment output equality, and trace capture/replay.

use speedybox::packet::trace::Trace;
use speedybox::packet::Packet;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::{chain2, ipfilter_chain, snort_monitor_chain};
use speedybox::platform::onvm::OnvmChain;
use speedybox::platform::ThreadedOnvm;
use speedybox::traffic::{Workload, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> Vec<Packet> {
    Workload::generate(&WorkloadConfig {
        flows,
        median_packets: 5.0,
        payload_len: 100,
        suspicious_fraction: 0.2,
        seed,
        ..WorkloadConfig::default()
    })
    .packets()
}

#[test]
fn bess_and_onvm_produce_identical_outputs() {
    let pkts = workload(30, 1);
    let bess = BessChain::speedybox(ipfilter_chain(3, 20)).run(pkts.clone());
    let onvm = OnvmChain::speedybox(ipfilter_chain(3, 20)).run(pkts);
    assert_eq!(bess.outputs.len(), onvm.outputs.len());
    for (a, b) in bess.outputs.iter().zip(&onvm.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}

#[test]
fn threaded_onvm_matches_modeled_onvm_outputs() {
    let pkts = workload(20, 2);
    let modeled = OnvmChain::speedybox(ipfilter_chain(2, 20)).run(pkts.clone());
    let threaded = ThreadedOnvm::run(ipfilter_chain(2, 20), pkts, true);
    assert_eq!(modeled.outputs.len(), threaded.delivered.len());
    for (a, b) in modeled.outputs.iter().zip(&threaded.delivered) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}

#[test]
fn threaded_onvm_snort_monitor_equivalence() {
    // The Fig 6 chain under true concurrency: logs and counters match the
    // single-threaded baseline.
    let pkts = workload(25, 3);

    let (nfs_base, h_base) = snort_monitor_chain();
    BessChain::original(nfs_base).run(pkts.clone());

    let (nfs_thr, h_thr) = snort_monitor_chain();
    let report = ThreadedOnvm::run(nfs_thr, pkts, true);
    assert!(report.dropped == 0);

    let logs_base: Vec<String> = h_base.snort.log().iter().map(|e| e.msg.clone()).collect();
    let logs_thr: Vec<String> = h_thr.snort.log().iter().map(|e| e.msg.clone()).collect();
    assert_eq!(logs_base, logs_thr, "IDS output identical under concurrency");
    assert_eq!(h_base.monitor.snapshot(), h_thr.monitor.snapshot());
}

#[test]
fn trace_capture_and_replay_is_faithful() {
    let w = Workload::generate(&WorkloadConfig { flows: 10, seed: 4, ..WorkloadConfig::default() });
    let trace = w.to_trace();
    let mut buf = Vec::new();
    trace.write_lines(&mut buf).unwrap();
    let reloaded = Trace::read_lines(&buf[..]).unwrap();
    let replayed = reloaded.packets().unwrap();

    // Replaying the reloaded trace produces the same chain results.
    let direct = BessChain::speedybox(ipfilter_chain(2, 10)).run(w.packets());
    let viatrace = BessChain::speedybox(ipfilter_chain(2, 10)).run(replayed);
    assert_eq!(direct.delivered, viatrace.delivered);
    assert_eq!(direct.outputs.len(), viatrace.outputs.len());
    for (a, b) in direct.outputs.iter().zip(&viatrace.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}

#[test]
fn many_flows_interleaved_keep_rules_apart() {
    // 200 interleaved flows: every flow's first packet is slow-path, all
    // others fast-path, and nothing cross-contaminates.
    let pkts = workload(200, 5);
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 10));
    let stats = chain.run(pkts);
    assert_eq!(stats.path_counts[1], 200, "one initial packet per flow");
    assert_eq!(stats.dropped, 0);
    // All flows closed via FIN: tables drained.
    let sbox = chain.sbox().unwrap();
    assert!(sbox.global.is_empty());
}

#[test]
fn chain2_runs_on_threaded_runtime() {
    let pkts = workload(15, 6);
    let (nfs, handles) = chain2();
    let report = ThreadedOnvm::run(nfs, pkts, true);
    assert!(report.dropped == 0);
    assert!(!report.delivered.is_empty());
    // Suspicious flows exist in this workload, so the IDS spoke.
    assert!(!handles.snort.log().is_empty());
}

#[test]
fn baseline_threaded_latency_exceeds_fast_path_latency() {
    use speedybox::stats::Summary;
    // Wall-clock sanity on the real pipeline: with SpeedyBox, subsequent
    // packets skip the rings, so mean latency should not be higher than
    // the all-rings baseline. (Generous margin: CI machines are noisy.)
    let pkts = workload(10, 7);
    let base = ThreadedOnvm::run(ipfilter_chain(4, 200), pkts.clone(), false);
    let fast = ThreadedOnvm::run(ipfilter_chain(4, 200), pkts, true);
    let b = Summary::new(base.latencies_ns.iter().map(|&x| x as f64)).median();
    let f = Summary::new(fast.latencies_ns.iter().map(|&x| x as f64)).median();
    assert!(f <= b * 3.0, "fast-path median {f}ns should not be far above baseline {b}ns");
}
