//! Property-based whole-chain equivalence: for random chains built from
//! the NF library and random flow mixes, the SpeedyBox fast path produces
//! byte-identical outputs to the original chain — the paper's central
//! correctness property, fuzzed.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use proptest::prelude::*;
use speedybox::mat::HeaderAction;
use speedybox::nf::ipfilter::IpFilter;
use speedybox::nf::monitor::Monitor;
use speedybox::nf::snort::SnortLite;
use speedybox::nf::synthetic::{SyntheticNf, SyntheticSf};
use speedybox::nf::vpn::VpnGateway;
use speedybox::nf::Nf;
use speedybox::packet::{HeaderField, Packet, PacketBuilder};
use speedybox::platform::bess::BessChain;

const RULES: &str = r#"
alert tcp any any -> any any (msg:"evil"; content:"evil";)
log tcp any any -> any any (msg:"probe"; content:"probe";)
"#;

/// NF kinds safe to compose arbitrarily (no drops, so output comparison is
/// straightforward; drop equivalence has dedicated tests).
#[derive(Debug, Clone, Copy)]
enum NfKind {
    PassFilter,
    Monitor,
    Snort,
    ModifyPort(u16),
    ModifyIp(u8),
    ReadSf,
    WriteSf,
    VpnPair, // encap NF + decap NF (added as two NFs)
}

fn arb_nf_kind() -> impl Strategy<Value = NfKind> {
    prop_oneof![
        Just(NfKind::PassFilter),
        Just(NfKind::Monitor),
        Just(NfKind::Snort),
        (1u16..u16::MAX).prop_map(NfKind::ModifyPort),
        (1u8..255).prop_map(NfKind::ModifyIp),
        Just(NfKind::ReadSf),
        Just(NfKind::WriteSf),
        Just(NfKind::VpnPair),
    ]
}

fn build_chain(kinds: &[NfKind]) -> Vec<Box<dyn Nf>> {
    let mut nfs: Vec<Box<dyn Nf>> = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        match kind {
            NfKind::PassFilter => nfs.push(Box::new(IpFilter::pass_through(5))),
            NfKind::Monitor => nfs.push(Box::new(Monitor::new())),
            NfKind::Snort => {
                nfs.push(Box::new(SnortLite::from_rules_text(RULES).unwrap()));
            }
            NfKind::ModifyPort(p) => nfs.push(Box::new(
                SyntheticNf::forward(format!("modport{i}"))
                    .with_header_action(HeaderAction::modify(HeaderField::DstPort, *p)),
            )),
            NfKind::ModifyIp(o) => nfs.push(Box::new(
                SyntheticNf::forward(format!("modip{i}")).with_header_action(HeaderAction::modify(
                    HeaderField::DstIp,
                    std::net::Ipv4Addr::new(10, 88, 0, *o),
                )),
            )),
            NfKind::ReadSf => {
                nfs.push(Box::new(SyntheticNf::forward(format!("read{i}")).with_state_function(
                    SyntheticSf { access: speedybox::mat::PayloadAccess::Read, scan_passes: 2 },
                )))
            }
            NfKind::WriteSf => {
                nfs.push(Box::new(SyntheticNf::forward(format!("write{i}")).with_state_function(
                    SyntheticSf { access: speedybox::mat::PayloadAccess::Write, scan_passes: 1 },
                )))
            }
            NfKind::VpnPair => {
                nfs.push(Box::new(VpnGateway::encap(i as u32)));
                nfs.push(Box::new(VpnGateway::decap(i as u32)));
            }
        }
    }
    nfs
}

fn arb_packets() -> impl Strategy<Value = Vec<Packet>> {
    // 1-4 flows, 1-8 packets each, mixed payloads; interleaved round-robin.
    (prop::collection::vec((prop::collection::vec(any::<u8>(), 0..64), 1usize..8), 1..4),).prop_map(
        |(flows,)| {
            let mut out = Vec::new();
            let max_len = flows.iter().map(|(_, n)| *n).max().unwrap_or(0);
            for round in 0..max_len {
                for (f, (payload, n)) in flows.iter().enumerate() {
                    if round < *n {
                        out.push(
                            PacketBuilder::tcp()
                                .src(format!("10.3.0.1:{}", 2000 + f).parse().unwrap())
                                .dst("10.4.0.1:80".parse().unwrap())
                                .seq(round as u32)
                                .payload(payload)
                                .build(),
                        );
                    }
                }
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-identical outputs for random chains and random flow mixes —
    /// on both execution environments, cross-checked against each other.
    #[test]
    fn chain_outputs_identical(
        kinds in prop::collection::vec(arb_nf_kind(), 0..5),
        packets in arb_packets(),
    ) {
        let orig = BessChain::original(build_chain(&kinds)).run(packets.clone());
        let fast = BessChain::speedybox(build_chain(&kinds)).run(packets.clone());
        prop_assert_eq!(orig.delivered, fast.delivered);
        prop_assert_eq!(orig.dropped, fast.dropped);
        for (a, b) in orig.outputs.iter().zip(&fast.outputs) {
            prop_assert_eq!(a.as_bytes(), b.as_bytes());
        }
        let onvm = speedybox::platform::onvm::OnvmChain::speedybox(build_chain(&kinds))
            .run(packets);
        prop_assert_eq!(onvm.delivered, orig.delivered);
        for (a, b) in orig.outputs.iter().zip(&onvm.outputs) {
            prop_assert_eq!(a.as_bytes(), b.as_bytes());
        }
    }

    /// SpeedyBox work per packet never exceeds the baseline by more than
    /// the bounded instrumentation overhead — and for chains with ≥2 NFs
    /// and ≥8 packets per flow it wins outright.
    #[test]
    fn speedybox_overhead_is_bounded(
        kinds in prop::collection::vec(arb_nf_kind(), 2..5),
        n_packets in 8usize..24,
    ) {
        let packets: Vec<Packet> = (0..n_packets)
            .map(|i| {
                PacketBuilder::tcp()
                    .src("10.3.0.1:2000".parse().unwrap())
                    .dst("10.4.0.1:80".parse().unwrap())
                    .seq(i as u32)
                    .payload(b"steady payload")
                    .build()
            })
            .collect();
        let orig = BessChain::original(build_chain(&kinds)).run(packets.clone());
        let fast = BessChain::speedybox(build_chain(&kinds)).run(packets);
        // The fast path's per-packet overhead (classify + MAT lookup +
        // fixed dispatch) plus the amortized slow-path recording are
        // bounded constants — SpeedyBox can cost more than the baseline
        // for near-free NFs (the paper's 1-header-action case), but only
        // by an additive margin.
        prop_assert!(
            fast.mean_latency_cycles() < orig.mean_latency_cycles() + 2000.0,
            "speedybox {} vs baseline {}",
            fast.mean_latency_cycles(),
            orig.mean_latency_cycles()
        );
    }
}
