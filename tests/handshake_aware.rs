//! The paper's §III initial-packet definition: "the first packet after a
//! connection is established (e.g., after the 3-way TCP handshake)". In
//! handshake-aware mode, SYN packets traverse the original chain without
//! recording; the first data packet records and installs the rule.

use speedybox::nf::mazunat::MazuNat;
use speedybox::nf::Nf;
use speedybox::packet::{Packet, PacketBuilder, TcpFlags};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::ipfilter_chain;
use speedybox::platform::{PathKind, SboxConfig};

fn cfg() -> SboxConfig {
    SboxConfig { handshake_aware: true, ..SboxConfig::default() }
}

fn pkt(flags: u8, payload: &[u8], seq: u32) -> Packet {
    PacketBuilder::tcp()
        .src("10.0.0.1:4321".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .flags(flags)
        .seq(seq)
        .payload(payload)
        .build()
}

#[test]
fn syn_rides_original_chain_first_data_packet_records() {
    let mut chain = BessChain::speedybox_with(ipfilter_chain(2, 20), cfg());
    // SYN and a retransmitted SYN: both pre-handshake.
    assert_eq!(chain.process(pkt(TcpFlags::SYN, b"", 0)).path, PathKind::Baseline);
    assert_eq!(chain.process(pkt(TcpFlags::SYN, b"", 0)).path, PathKind::Baseline);
    assert!(chain.sbox().unwrap().global.is_empty(), "no rule from handshake packets");
    // First data packet is the paper's "initial packet".
    assert_eq!(chain.process(pkt(TcpFlags::ACK, b"data-1", 1)).path, PathKind::Initial);
    assert_eq!(chain.sbox().unwrap().global.len(), 1);
    // From then on: fast path.
    assert_eq!(chain.process(pkt(TcpFlags::ACK, b"data-2", 2)).path, PathKind::Subsequent);
}

#[test]
fn default_mode_records_from_first_packet() {
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    assert_eq!(chain.process(pkt(TcpFlags::SYN, b"", 0)).path, PathKind::Initial);
    assert_eq!(chain.process(pkt(TcpFlags::ACK, b"data", 1)).path, PathKind::Subsequent);
}

#[test]
fn pure_syn_flood_never_installs_rules() {
    let mut chain = BessChain::speedybox_with(ipfilter_chain(1, 10), cfg());
    for i in 0..50 {
        let out = chain.process(pkt(TcpFlags::SYN, b"", i));
        assert_eq!(out.path, PathKind::Baseline);
        assert!(out.survived());
    }
    assert!(chain.sbox().unwrap().global.is_empty());
}

#[test]
fn udp_flows_are_unaffected_by_handshake_mode() {
    let mut chain = BessChain::speedybox_with(ipfilter_chain(1, 10), cfg());
    let udp = |i: u32| {
        PacketBuilder::udp()
            .src("10.0.0.1:5353".parse().unwrap())
            .dst("10.0.0.2:53".parse().unwrap())
            .payload(format!("q{i}").as_bytes())
            .build()
    };
    assert_eq!(chain.process(udp(0)).path, PathKind::Initial);
    assert_eq!(chain.process(udp(1)).path, PathKind::Subsequent);
}

#[test]
fn nat_allocates_during_handshake_and_rule_matches() {
    // The NAT allocates its mapping while processing the SYN (original
    // path); the rule recorded later by the data packet must reuse that
    // same mapping — the consolidated path stays consistent with the
    // connection the peer observed during the handshake.
    let nat = MazuNat::new("198.51.100.1".parse().unwrap(), (50000, 51000));
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(nat)];
    let mut chain = BessChain::speedybox_with(nfs, cfg());

    let syn_out = chain.process(pkt(TcpFlags::SYN, b"", 0)).packet.unwrap();
    let syn_port = syn_out.get_field(speedybox::packet::HeaderField::SrcPort).unwrap().as_port();
    let data_out = chain.process(pkt(TcpFlags::ACK, b"hello", 1)).packet.unwrap();
    let data_port = data_out.get_field(speedybox::packet::HeaderField::SrcPort).unwrap().as_port();
    assert_eq!(syn_port, data_port, "fast-path rule reuses the handshake-time mapping");
    let fast_out = chain.process(pkt(TcpFlags::ACK, b"again", 2)).packet.unwrap();
    assert_eq!(
        fast_out.get_field(speedybox::packet::HeaderField::SrcPort).unwrap().as_port(),
        syn_port
    );
}

#[test]
fn outputs_identical_to_baseline_in_handshake_mode() {
    let pkts: Vec<Packet> = {
        let mut v = vec![pkt(TcpFlags::SYN, b"", 0)];
        for i in 1..10 {
            v.push(pkt(TcpFlags::ACK | TcpFlags::PSH, format!("d{i}").as_bytes(), i));
        }
        v.push(pkt(TcpFlags::FIN | TcpFlags::ACK, b"", 10));
        v
    };
    let base = BessChain::original(ipfilter_chain(3, 20)).run(pkts.clone());
    let fast = BessChain::speedybox_with(ipfilter_chain(3, 20), cfg()).run(pkts);
    assert_eq!(base.outputs.len(), fast.outputs.len());
    for (a, b) in base.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
