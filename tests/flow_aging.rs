//! Idle-flow aging: UDP flows never send FIN/RST, so the paper's
//! FIN-triggered garbage collection (§VI-B) leaves their rules behind
//! forever. The reproduction adds deterministic idle expiry
//! (`SpeedyBox::expire_idle_flows`) driven by the classifier's packet
//! clock.

use speedybox::nf::monitor::Monitor;
use speedybox::nf::Nf;
use speedybox::packet::{Packet, PacketBuilder};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::ipfilter_chain;
use speedybox::platform::PathKind;

fn udp_packet(src_port: u16, i: u32) -> Packet {
    PacketBuilder::udp()
        .src(format!("10.0.0.1:{src_port}").parse().unwrap())
        .dst("10.0.0.2:53".parse().unwrap())
        .payload(format!("q{i}").as_bytes())
        .build()
}

#[test]
fn udp_rules_linger_without_aging() {
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    for flow in 0..10 {
        for i in 0..3 {
            chain.process(udp_packet(5000 + flow, i));
        }
    }
    // No FIN ever arrives: every flow still owns a rule.
    let sbox = chain.sbox().unwrap();
    assert_eq!(sbox.global.len(), 10);
    assert_eq!(sbox.classifier.len(), 10);
}

#[test]
fn idle_udp_flows_are_reclaimed() {
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    // Ten UDP flows, then one flow keeps talking while the others idle.
    for flow in 0..10 {
        chain.process(udp_packet(5000 + flow, 0));
    }
    for i in 1..=50 {
        chain.process(udp_packet(5000, i));
    }
    let reclaimed = chain.sbox().unwrap().expire_idle_flows(30);
    assert_eq!(reclaimed, 9, "all idle flows reclaimed, the busy one kept");
    let sbox = chain.sbox().unwrap();
    assert_eq!(sbox.global.len(), 1);
    assert_eq!(sbox.classifier.len(), 1);
    // The busy flow still fast-paths; an expired flow re-records.
    assert_eq!(chain.process(udp_packet(5000, 99)).path, PathKind::Subsequent);
    assert_eq!(chain.process(udp_packet(5003, 99)).path, PathKind::Initial);
    assert_eq!(chain.process(udp_packet(5003, 100)).path, PathKind::Subsequent);
}

#[test]
fn expiry_tears_down_nf_mat_state() {
    let mon = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(mon)];
    let mut chain = BessChain::speedybox(nfs);
    chain.process(udp_packet(6000, 0));
    let fid = udp_packet(6000, 0).five_tuple().unwrap().fid();
    assert!(chain.sbox().unwrap().global.contains(fid));
    for i in 0..20 {
        chain.process(udp_packet(6001, i));
    }
    assert_eq!(chain.sbox().unwrap().expire_idle_flows(10), 1);
    // Global MAT and Local MATs are clean for the expired flow.
    let sbox = chain.sbox().unwrap();
    assert!(!sbox.global.contains(fid));
    assert!(sbox.global.locals().iter().all(|l| l.rule(fid).is_none()));
}

#[test]
fn aging_preserves_output_equivalence() {
    // Expiring a flow mid-stream only moves later packets back through the
    // slow path once — the bytes that come out are unchanged.
    let pkts: Vec<Packet> = (0..30).map(|i| udp_packet(7000, i)).collect();
    let baseline = BessChain::original(ipfilter_chain(2, 20)).run(pkts.clone());

    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    let mut outputs = Vec::new();
    for (i, p) in pkts.into_iter().enumerate() {
        if i == 15 {
            // Force-expire everything (idle threshold zero).
            chain.sbox().unwrap().expire_idle_flows(0);
        }
        if let Some(out) = chain.process(p).packet {
            outputs.push(out);
        }
    }
    assert_eq!(baseline.outputs.len(), outputs.len());
    for (a, b) in baseline.outputs.iter().zip(&outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}
