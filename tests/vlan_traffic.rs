//! VLAN-tagged traffic through SpeedyBox chains: tags must survive both
//! paths, flow identity must ignore the tag, and tagged captures must
//! round-trip through pcap.

use speedybox::packet::pcap::{read_pcap, write_pcap};
use speedybox::packet::trace::{Trace, TraceRecord};
use speedybox::packet::{HeaderField, Packet, PacketBuilder};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::{chain1, ipfilter_chain};
use speedybox::platform::PathKind;

fn tagged(vlan: u16, src_port: u16, i: u32) -> Packet {
    PacketBuilder::tcp()
        .src(format!("10.0.0.1:{src_port}").parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .vlan(vlan)
        .seq(i)
        .payload(format!("vlan-pkt-{i}").as_bytes())
        .build()
}

#[test]
fn tags_survive_fast_path() {
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    for i in 0..5 {
        let out = chain.process(tagged(100, 4000, i));
        let pkt = out.packet.expect("delivered");
        assert_eq!(pkt.vlan_id(), Some(100), "tag intact on packet {i}");
        assert_eq!(pkt.payload().unwrap(), format!("vlan-pkt-{i}").as_bytes());
    }
}

#[test]
fn tagged_and_untagged_same_tuple_share_a_flow() {
    // The 5-tuple (not the tag) is flow identity, as in the paper's
    // classifier; a tagged packet on an established untagged flow is
    // subsequent traffic.
    let mut chain = BessChain::speedybox(ipfilter_chain(1, 10));
    let untagged = PacketBuilder::tcp()
        .src("10.0.0.1:4100".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .payload(b"first")
        .build();
    assert_eq!(chain.process(untagged).path, PathKind::Initial);
    let out = chain.process(tagged(5, 4100, 1));
    assert_eq!(out.path, PathKind::Subsequent);
    assert_eq!(out.packet.unwrap().vlan_id(), Some(5));
}

#[test]
fn vlan_outputs_match_baseline_through_chain1() {
    let pkts: Vec<Packet> = (0..12).map(|i| tagged(200, 4200 + (i % 3) as u16, i)).collect();
    let base = BessChain::original(chain1(4).0).run(pkts.clone());
    let fast = BessChain::speedybox(chain1(4).0).run(pkts);
    assert_eq!(base.outputs.len(), fast.outputs.len());
    for (a, b) in base.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.vlan_id(), Some(200));
    }
}

#[test]
fn nat_rewrites_through_the_tag() {
    let (nfs, handles) = chain1(4);
    let mut chain = BessChain::speedybox(nfs);
    let out = chain.process(tagged(300, 4300, 0)).packet.unwrap();
    // MazuNAT rewrote the source behind the VLAN tag.
    assert_eq!(
        out.get_field(HeaderField::SrcIp).unwrap().as_ipv4(),
        "198.51.100.1".parse::<std::net::Ipv4Addr>().unwrap()
    );
    assert_eq!(out.vlan_id(), Some(300));
    assert!(out.verify_checksums().unwrap());
    assert_eq!(handles.nat.mapping_count(), 1);
}

#[test]
fn tagged_capture_round_trips_pcap() {
    let t: Trace = (0..4u32)
        .map(|i| TraceRecord::capture(u64::from(i) * 1_000, &tagged(7, 4400, i)))
        .collect();
    let mut buf = Vec::new();
    write_pcap(&t, &mut buf).unwrap();
    let t2 = read_pcap(&buf[..]).unwrap();
    assert_eq!(t, t2);
    for p in t2.packets().unwrap() {
        assert_eq!(p.vlan_id(), Some(7));
    }
}
