//! End-to-end tests of the `speedybox` CLI binary.

use std::process::Command;

fn speedybox(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_speedybox")).args(args).output().expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = speedybox(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn chains_lists_all_names() {
    let out = speedybox(&["chains"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "chain1",
        "chain2",
        "snort-monitor",
        "ipfilter:<N>",
        "synthetic:<N>",
        "vpn-tunnel",
        "dos-mitigation",
        "maglev-failover",
        "snort",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn lint_single_chain_reports_clean() {
    let out = speedybox(&["lint", "vpn-tunnel"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vpn-tunnel: 0 error(s)"), "{text}");
}

#[test]
fn lint_all_chains_is_clean_and_json_renders() {
    let out = speedybox(&["lint", "--all"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chain1: 0 error(s)"), "{text}");

    let out = speedybox(&["lint", "chain2", "--json"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"chain\":\"chain2\""), "{text}");
}

#[test]
fn lint_unknown_chain_fails() {
    let out = speedybox(&["lint", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown chain"));
}

#[test]
fn run_with_verify_preflights_and_proceeds() {
    let out = speedybox(&["run", "--chain", "chain2", "--verify", "--speedybox", "--flows", "10"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verify: chain2 passed"), "{text}");
    assert!(text.contains("fast-path"), "{text}");
}

#[test]
fn compare_reports_latency_reduction() {
    let out = speedybox(&["run", "--chain", "ipfilter:3", "--compare", "--flows", "20"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("original"));
    assert!(text.contains("speedybox"));
    assert!(text.contains("latency reduction:"));
}

#[test]
fn unknown_chain_is_a_clean_error() {
    let out = speedybox(&["run", "--chain", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown chain"));
}

#[test]
fn run_rejects_bad_worker_counts() {
    for bad in ["3", "0", "six"] {
        let out = speedybox(&["run", "--chain", "chain2", "--speedybox", "--workers", bad]);
        assert!(!out.status.success(), "--workers {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--workers"), "error names the flag: {err}");
    }
    // And a missing value is a clean error, not a silent default.
    let out = speedybox(&["run", "--chain", "chain2", "--speedybox", "--workers"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers requires a value"));
}

#[test]
fn run_with_flow_bounds_and_admission_policies() {
    // A tiny bounded table still processes every packet: overflow flows
    // are evicted (default) or ride the original chain (reject).
    for policy in ["evict", "reject"] {
        let out = speedybox(&[
            "run",
            "--chain",
            "chain2",
            "--speedybox",
            "--flows",
            "20",
            "--max-flows",
            "4",
            "--idle-timeout",
            "64",
            "--admission",
            policy,
        ]);
        assert!(
            out.status.success(),
            "--admission {policy}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("fast-path"));
    }
    let out = speedybox(&["run", "--chain", "chain2", "--admission", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--admission"));
}

#[test]
fn gen_trace_then_replay_lines_and_pcap() {
    let dir = std::env::temp_dir();
    for (ext, fmt_probe) in [("trace", "lines"), ("pcap", "pcap")] {
        let path = dir.join(format!("speedybox-cli-test.{ext}"));
        let path_s = path.to_str().unwrap();
        let out = speedybox(&["gen-trace", "--flows", "4", "--out", path_s]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains(fmt_probe));
        let out = speedybox(&["run", "--chain", "ipfilter:2", "--trace", path_s, "--speedybox"]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("fast-path"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn dump_mat_prints_rules() {
    // UDP-less synthetic flows close with FIN, so dump after run is empty;
    // use a chain over a fresh workload and check the dump header prints.
    let out = speedybox(&["run", "--chain", "ipfilter:2", "--flows", "5", "--dump-mat"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("global MAT:"));
}

#[test]
fn onvm_env_works() {
    let out = speedybox(&["run", "--chain", "chain2", "--env", "onvm", "--flows", "10"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Mpps"));
}

#[test]
fn sim_single_chain_is_clean_and_deterministic() {
    let args = ["sim", "--chain", "chain2", "--seeds", "2"];
    let a = speedybox(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("sim: zero divergences"), "{text}");
    assert!(text.contains("sweep hash"), "{text}");
    // Same seed, same chain: byte-identical report.
    let b = speedybox(&args);
    assert!(b.status.success());
    assert_eq!(a.stdout, b.stdout, "sim output must be deterministic");
}

#[test]
fn sim_seeded_bug_is_caught_shrunk_and_replayable() {
    let dir = std::env::temp_dir().join("speedybox-sim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap();
    // The injected consolidation bug must be detected, shrunk, and dumped
    // as a replayable artifact; the run exits 1.
    let out = speedybox(&[
        "sim",
        "--chain",
        "ipfilter:3",
        "--seeds",
        "4",
        "--no-faults",
        "--env",
        "bess",
        "--inject-bug",
        "skip-checksum-fix",
        "--artifact-dir",
        dir_s,
    ]);
    assert!(!out.status.success(), "injected bug must fail the sweep");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DIVERGENCE"), "{text}");
    assert!(text.contains("divergent case(s)"), "{text}");

    let artifact = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("sim-"))
        .expect("an artifact was written");
    let path = artifact.path();
    let path_s = path.to_str().unwrap();

    // The artifact replays to the same divergence, byte-for-byte stable.
    let r1 = speedybox(&["sim", "--replay", path_s]);
    assert_eq!(r1.status.code(), Some(1), "replay of a divergent case exits 1");
    let rt = String::from_utf8_lossy(&r1.stdout);
    assert!(rt.contains("DIVERGENCE"), "{rt}");
    let r2 = speedybox(&["sim", "--replay", path_s]);
    assert_eq!(r1.stdout, r2.stdout, "replay must be deterministic");

    // The shrunk reproducer is small.
    let json = std::fs::read_to_string(&path).unwrap();
    let packets = json.matches("\"frame\"").count();
    assert!(packets <= 20, "shrunk artifact has {packets} packets (> 20)");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_nf_faults_sweep_is_clean_and_deterministic() {
    let args = ["sim", "--chain", "chain2", "--seeds", "2", "--nf-faults"];
    let a = speedybox(&args);
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("sim: zero divergences"), "{text}");
    let b = speedybox(&args);
    assert!(b.status.success());
    assert_eq!(a.stdout, b.stdout, "nf-fault sim output must be deterministic");
}

#[test]
fn sim_recovery_bug_is_caught_and_artifact_replays_nf_verbs() {
    let dir = std::env::temp_dir().join("speedybox-sim-cli-nf-test");
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap();
    // A recovery path that restores the snapshot but skips the in-flight
    // log replay must be caught by the sweep once kills are in the plan,
    // shrunk, and dumped with the nfkill verb intact in the artifact.
    let out = speedybox(&[
        "sim",
        "--chain",
        "snort-monitor",
        "--seeds",
        "4",
        "--no-faults",
        "--nf-faults",
        "--env",
        "bess",
        "--inject-bug",
        "skip-snapshot-replay",
        "--artifact-dir",
        dir_s,
    ]);
    assert!(!out.status.success(), "skipped replay must fail the sweep");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DIVERGENCE"), "{text}");

    let artifact = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("sim-"))
        .expect("an artifact was written");
    let path = artifact.path();
    let path_s = path.to_str().unwrap();

    // The shrunk reproducer kept the kill (dropping it would lose the
    // divergence) and round-trips through replay deterministically.
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("nfkill@"), "artifact must carry the kill verb: {json}");
    assert!(json.contains("skip-snapshot-replay"), "artifact must carry the bug: {json}");
    let r1 = speedybox(&["sim", "--replay", path_s]);
    assert_eq!(r1.status.code(), Some(1), "replay of the recovery bug exits 1");
    assert!(String::from_utf8_lossy(&r1.stdout).contains("DIVERGENCE"));
    let r2 = speedybox(&["sim", "--replay", path_s]);
    assert_eq!(r1.stdout, r2.stdout, "replay must be deterministic");

    // The shrunk reproducer is small.
    let packets = json.matches("\"frame\"").count();
    assert!(packets <= 20, "shrunk artifact has {packets} packets (> 20)");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_replay_of_missing_file_is_a_clean_error() {
    let out = speedybox(&["sim", "--replay", "/nonexistent/sim-artifact.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("read"));
}

#[test]
fn sim_rejects_unknown_bug_and_env() {
    let out = speedybox(&["sim", "--inject-bug", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown bug"));
    let out = speedybox(&["sim", "--env", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown environment"));
}
