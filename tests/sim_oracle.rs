//! Tier-1 differential simulation: the consolidated runtime vs the naive
//! reference oracle, over every registry chain, both platform emulations,
//! both header-action execution modes, per-packet and batched processing —
//! with scripted fault injection enabled throughout.
//!
//! One `#[test]` per chain so the sweep parallelizes across the harness's
//! worker threads. Each test runs 32 seeds x {bess,onvm} x
//! {compiled,interpreted} x batch {1,8} = 256 differential cases and
//! requires zero divergences. A separate worker sweep re-runs every chain
//! at worker counts {1,2,4,8} and requires the output hash to be
//! worker-count invariant.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use speedybox::sim::{
    generate, run_case, shrink, BugKind, DivergenceKind, EnvKind, Fault, FaultAt, FaultPlan,
    ScenarioConfig, SimCase,
};

const SEEDS: u64 = 32;

fn sweep_chain(chain: &str) {
    let mut cases = 0usize;
    let mut delivered = 0usize;
    for seed in 0..SEEDS {
        let scenario = generate(&ScenarioConfig {
            seed,
            chain: chain.to_owned(),
            with_faults: true,
            nf_faults: false,
        });
        for env in [EnvKind::Bess, EnvKind::Onvm] {
            for compiled in [true, false] {
                for batch in [1usize, 8] {
                    let case = SimCase {
                        chain: chain.to_owned(),
                        env,
                        compiled,
                        batch,
                        workers: 1,
                        seed,
                        max_flows: 0,
                        bug: None,
                        items: scenario.items.clone(),
                        faults: scenario.faults.clone(),
                    };
                    let out = run_case(&case).unwrap_or_else(|e| {
                        panic!("chain={chain} env={} seed={seed}: {e}", env.as_str())
                    });
                    assert!(
                        out.divergence.is_none(),
                        "chain={chain} env={} mode={} batch={batch} seed={seed}: {:?}",
                        env.as_str(),
                        if compiled { "compiled" } else { "interpreted" },
                        out.divergence
                    );
                    cases += 1;
                    delivered += out.delivered;
                }
            }
        }
    }
    assert_eq!(cases, (SEEDS as usize) * 8);
    assert!(delivered > 0, "sweep must exercise the delivery path");
}

#[test]
fn sim_oracle_chain1() {
    sweep_chain("chain1");
}

#[test]
fn sim_oracle_chain2() {
    sweep_chain("chain2");
}

#[test]
fn sim_oracle_snort_monitor() {
    sweep_chain("snort-monitor");
}

#[test]
fn sim_oracle_ipfilter() {
    sweep_chain("ipfilter:3");
}

#[test]
fn sim_oracle_synthetic() {
    sweep_chain("synthetic:3");
}

#[test]
fn sim_oracle_vpn_tunnel() {
    sweep_chain("vpn-tunnel");
}

#[test]
fn sim_oracle_dos_mitigation() {
    sweep_chain("dos-mitigation");
}

#[test]
fn sim_oracle_maglev_failover() {
    sweep_chain("maglev-failover");
}

#[test]
fn sim_oracle_snort() {
    sweep_chain("snort");
}

/// Mutation test of the referee itself: a deliberately seeded SUT bug
/// (consolidation "forgets" the trailing checksum fix) must be caught as a
/// byte divergence and shrink to a minimal reproducer of at most 20
/// packets that still diverges.
#[test]
fn seeded_bug_is_caught_and_shrunk() {
    let chain = "ipfilter:3";
    let mut caught = None;
    for seed in 0..8u64 {
        let scenario = generate(&ScenarioConfig {
            seed,
            chain: chain.to_owned(),
            with_faults: false,
            nf_faults: false,
        });
        let case = SimCase {
            chain: chain.to_owned(),
            env: EnvKind::Bess,
            compiled: true,
            batch: 1,
            workers: 1,
            seed,
            max_flows: 0,
            bug: Some(BugKind::SkipChecksumFix),
            items: scenario.items,
            faults: scenario.faults,
        };
        let out = run_case(&case).unwrap();
        if let Some(d) = out.divergence {
            assert_eq!(d.kind, DivergenceKind::Bytes, "checksum bug shows up in output bytes");
            caught = Some(case);
            break;
        }
    }
    let case = caught.expect("seeded bug must diverge within 8 seeds");
    let (minimal, runs) = shrink(&case, 256);
    assert!(
        minimal.items.len() <= 20,
        "shrunk reproducer has {} packets (> 20) after {runs} runs",
        minimal.items.len()
    );
    let re = run_case(&minimal).unwrap();
    assert!(re.divergence.is_some(), "shrunk case must still diverge");
}

/// Differential scaling sweep: every registry chain x worker counts
/// {1, 2, 4, 8} over 32 seeds, faults on. Requires zero divergences AND a
/// worker-count-invariant output hash: the symmetric-worker runtime may
/// only redistribute work, never change what happens to a packet.
#[test]
fn worker_sweep_is_divergence_free_and_hash_stable() {
    let chains = [
        "chain1",
        "chain2",
        "snort-monitor",
        "ipfilter:3",
        "synthetic:3",
        "vpn-tunnel",
        "dos-mitigation",
        "maglev-failover",
        "snort",
    ];
    let mut cases = 0usize;
    for chain in chains {
        for seed in 0..SEEDS {
            let scenario = generate(&ScenarioConfig {
                seed,
                chain: chain.to_owned(),
                with_faults: true,
                nf_faults: false,
            });
            let mut base_hash = None;
            for workers in [1usize, 2, 4, 8] {
                let case = SimCase {
                    chain: chain.to_owned(),
                    env: EnvKind::Bess,
                    compiled: true,
                    batch: 8,
                    workers,
                    seed,
                    max_flows: 0,
                    bug: None,
                    items: scenario.items.clone(),
                    faults: scenario.faults.clone(),
                };
                let out = run_case(&case)
                    .unwrap_or_else(|e| panic!("chain={chain} workers={workers} seed={seed}: {e}"));
                assert!(
                    out.divergence.is_none(),
                    "chain={chain} workers={workers} seed={seed}: {:?}",
                    out.divergence
                );
                match base_hash {
                    None => base_hash = Some(out.output_hash),
                    Some(h) => assert_eq!(
                        out.output_hash, h,
                        "chain={chain} seed={seed}: hash differs at workers={workers}"
                    ),
                }
                cases += 1;
            }
        }
    }
    assert_eq!(cases, chains.len() * (SEEDS as usize) * 4);
}

/// Capacity-evict pressure: with the flow table bounded far below the
/// trace's flow count, installs continuously LRU-evict live flows — each
/// displaced flow must re-record through the slow path with identical
/// bytes, on top of the fault plans' forced `evict@N=k` clauses.
#[test]
fn bounded_table_sweep_is_equivalent() {
    for chain in ["chain1", "chain2", "maglev-failover"] {
        for seed in 0..8u64 {
            let scenario = generate(&ScenarioConfig {
                seed,
                chain: chain.to_owned(),
                with_faults: true,
                nf_faults: false,
            });
            for batch in [1usize, 8] {
                let case = SimCase {
                    chain: chain.to_owned(),
                    env: EnvKind::Bess,
                    compiled: true,
                    batch,
                    workers: 1,
                    seed,
                    max_flows: 48,
                    bug: None,
                    items: scenario.items.clone(),
                    faults: scenario.faults.clone(),
                };
                let out = run_case(&case).unwrap();
                assert!(
                    out.divergence.is_none(),
                    "chain={chain} seed={seed} batch={batch} under evict pressure: {:?}",
                    out.divergence
                );
            }
        }
    }
}

/// Pool-pressure sweep: the `pool=N` fault clamps the SUT's packet-buffer
/// pool to a starvation capacity at packet 0 and lifts it mid-trace. Every
/// take beyond the clamp falls back to the heap — a pure memory-management
/// event, so the oracle comparison must see zero divergences on top of
/// each scenario's regular fault plan.
#[test]
fn pool_pressure_sweep_is_equivalent() {
    for chain in ["chain1", "chain2", "maglev-failover"] {
        for seed in 0..6u64 {
            let scenario = generate(&ScenarioConfig {
                seed,
                chain: chain.to_owned(),
                with_faults: true,
                nf_faults: false,
            });
            let mid = scenario.items.len() / 2;
            for cap in [0u64, 2] {
                let mut faults = scenario.faults.faults.clone();
                faults.push(FaultAt { at: 0, fault: Fault::PoolPressure(cap) });
                faults.push(FaultAt { at: mid, fault: Fault::PoolPressure(4096) });
                for batch in [1usize, 8] {
                    let case = SimCase {
                        chain: chain.to_owned(),
                        env: EnvKind::Bess,
                        compiled: true,
                        batch,
                        workers: 1,
                        seed,
                        max_flows: 0,
                        bug: None,
                        items: scenario.items.clone(),
                        faults: FaultPlan::new(faults.clone()),
                    };
                    let out = run_case(&case).unwrap();
                    assert!(
                        out.divergence.is_none(),
                        "chain={chain} seed={seed} cap={cap} batch={batch} under pool pressure: {:?}",
                        out.divergence
                    );
                }
            }
        }
    }
}

/// The same case always produces the same outcome stream — the determinism
/// guarantee replay artifacts rely on.
#[test]
fn run_case_is_deterministic() {
    let scenario = generate(&ScenarioConfig {
        seed: 11,
        chain: "chain2".to_owned(),
        with_faults: true,
        nf_faults: false,
    });
    let case = SimCase {
        chain: "chain2".to_owned(),
        env: EnvKind::Onvm,
        compiled: true,
        batch: 8,
        workers: 1,
        seed: 11,
        max_flows: 0,
        bug: None,
        items: scenario.items,
        faults: scenario.faults,
    };
    let a = run_case(&case).unwrap();
    let b = run_case(&case).unwrap();
    assert_eq!(a.output_hash, b.output_hash);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.rejected, b.rejected);
}
