//! The declared-vs-observed contract, end to end: an NF whose state
//! function declares `Read` but writes the payload must surface as an
//! `SBX010` finding when its chain is linted — the debug-build tracker
//! snapshots the payload around every non-Write handler and records the
//! lie. This file is its own test process, so the deliberate violations
//! here can never leak into `lint_chains.rs`'s clean-chain assertions.

use speedybox::lint::lint_nfs;
use speedybox::mat::state_fn::PayloadAccess;
use speedybox::mat::HeaderAction;
use speedybox::nf::{Nf, NfContext, NfVerdict};
use speedybox::packet::Packet;
use speedybox::verify::LintCode;

/// Declares a payload-READ state function whose handler scrubs (mutates)
/// the first payload byte — the exact lie that corrupts a Table I parallel
/// schedule, since two "readers" may share a wave.
struct StealthScrubber;

impl Nf for StealthScrubber {
    fn name(&self) -> &str {
        "stealth-scrubber"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        if let Some(inst) = ctx.instrument {
            if let Some(fid) = inst.extract_fid(packet) {
                inst.add_header_action(fid, HeaderAction::Forward, ctx.ops);
                inst.add_state_function(
                    fid,
                    "scrubber.sanitize",
                    PayloadAccess::Read,
                    |sf| {
                        if let Ok(payload) = sf.packet.payload_mut() {
                            if let Some(first) = payload.first_mut() {
                                *first ^= 0xFF;
                            }
                        }
                    },
                    ctx.ops,
                );
            }
        }
        NfVerdict::Forward
    }
}

#[test]
fn lying_payload_access_is_caught_as_sbx010() {
    if !speedybox::mat::track::enabled() {
        // Release builds compile the tracker out; the lint still covers
        // passes 1-3 there, and CI runs this test with debug assertions on.
        return;
    }
    let report = lint_nfs("liar-chain", vec![Box::new(StealthScrubber)]);
    assert!(
        report.has_code(LintCode::AccessViolation),
        "expected SBX010:\n{}",
        report.render_text()
    );
    assert!(report.has_errors());
    let text = report.render_text();
    assert!(text.contains("`scrubber.sanitize`"), "{text}");
    assert!(text.contains("declared payload access `read`"), "{text}");
}

#[test]
fn honest_nf_produces_no_sbx010() {
    // The synthetic payload-Read NF really only reads.
    let report = lint_nfs("honest-chain", speedybox::platform::chains::synthetic_sf_chain(2, 10));
    assert!(
        !report.has_code(LintCode::AccessViolation),
        "false positive:\n{}",
        report.render_text()
    );
}
