//! Bidirectional traffic through a NAT'd chain: outbound flows establish
//! mappings, reply traffic is translated back, and both directions ride
//! their own consolidated fast-path rules.

use speedybox::nf::ipfilter::IpFilter;
use speedybox::nf::mazunat::MazuNat;
use speedybox::nf::monitor::Monitor;
use speedybox::nf::Nf;
use speedybox::packet::{HeaderField, Packet, PacketBuilder};
use speedybox::platform::bess::BessChain;
use speedybox::platform::PathKind;

fn outbound(src_port: u16, i: u32) -> Packet {
    PacketBuilder::tcp()
        .src(format!("192.168.1.5:{src_port}").parse().unwrap())
        .dst("93.184.216.34:443".parse().unwrap())
        .seq(i)
        .payload(format!("req-{i}").as_bytes())
        .build()
}

fn reply(ext_port: u16, i: u32) -> Packet {
    PacketBuilder::tcp()
        .src("93.184.216.34:443".parse().unwrap())
        .dst(format!("198.51.100.1:{ext_port}").parse().unwrap())
        .seq(i)
        .payload(format!("resp-{i}").as_bytes())
        .build()
}

fn chain(nat: &MazuNat, mon: &Monitor) -> Vec<Box<dyn Nf>> {
    vec![Box::new(nat.clone()), Box::new(mon.clone()), Box::new(IpFilter::pass_through(20))]
}

#[test]
fn both_directions_fast_path_independently() {
    let nat = MazuNat::new("198.51.100.1".parse().unwrap(), (50000, 51000));
    let mon = Monitor::new();
    let mut c = BessChain::speedybox(chain(&nat, &mon));

    // Outbound: initial then fast.
    let out1 = c.process(outbound(4000, 0));
    assert_eq!(out1.path, PathKind::Initial);
    let ext_port = out1.packet.as_ref().unwrap().get_field(HeaderField::SrcPort).unwrap().as_port();
    assert_eq!(c.process(outbound(4000, 1)).path, PathKind::Subsequent);

    // Reply direction: its own rule, also initial then fast.
    let back1 = c.process(reply(ext_port, 0));
    assert_eq!(back1.path, PathKind::Initial);
    let delivered = back1.packet.unwrap();
    assert_eq!(
        delivered.get_field(HeaderField::DstIp).unwrap().as_ipv4(),
        "192.168.1.5".parse::<std::net::Ipv4Addr>().unwrap()
    );
    assert_eq!(delivered.get_field(HeaderField::DstPort).unwrap().as_port(), 4000);
    let back2 = c.process(reply(ext_port, 1));
    assert_eq!(back2.path, PathKind::Subsequent);
    assert_eq!(back2.packet.unwrap().get_field(HeaderField::DstPort).unwrap().as_port(), 4000);
    // Two rules installed: one per direction.
    assert_eq!(c.sbox().unwrap().global.len(), 2);
}

#[test]
fn bidirectional_outputs_match_baseline() {
    let mk = || {
        let nat = MazuNat::new("198.51.100.1".parse().unwrap(), (50000, 51000));
        let mon = Monitor::new();
        chain(&nat, &mon)
    };
    // Interleave requests and replies; external port is deterministic
    // (first allocation from the pool).
    let mut pkts = Vec::new();
    for i in 0..8u32 {
        pkts.push(outbound(4000, i));
        if i > 0 {
            pkts.push(reply(50000, i));
        }
    }
    let base = BessChain::original(mk()).run(pkts.clone());
    let fast = BessChain::speedybox(mk()).run(pkts);
    assert_eq!(base.delivered, fast.delivered);
    assert_eq!(base.dropped, fast.dropped);
    for (a, b) in base.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}

#[test]
fn unsolicited_inbound_early_drops_on_fast_path() {
    let nat = MazuNat::new("198.51.100.1".parse().unwrap(), (50000, 51000));
    let mon = Monitor::new();
    let mut c = BessChain::speedybox(chain(&nat, &mon));
    // No outbound flow exists: stray inbound gets a drop rule.
    let first = c.process(reply(50123, 0));
    assert!(first.packet.is_none());
    let second = c.process(reply(50123, 1));
    assert!(second.packet.is_none());
    assert_eq!(second.path, PathKind::Subsequent, "drop consolidated onto the fast path");
    assert!(second.work_cycles < first.work_cycles, "early drop is cheaper");
}
