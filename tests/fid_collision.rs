//! End-to-end FID-collision handling.
//!
//! The paper's 20-bit FID space means distinct flows can hash to the same
//! rule slot (§VI-B). The prototype shares the slot silently; this
//! reproduction detects the 5-tuple mismatch at the classifier and routes
//! the colliding flow down the original chain uninstrumented, so both
//! flows observe exactly the baseline behaviour.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddrV4};

use speedybox::mat::PacketClass;
use speedybox::nf::monitor::Monitor;
use speedybox::nf::Nf;
use speedybox::packet::{Fid, FiveTuple, Packet, PacketBuilder, Protocol};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::ipfilter_chain;
use speedybox::platform::PathKind;

fn colliding_tuples() -> (FiveTuple, FiveTuple) {
    let mut seen: HashMap<Fid, FiveTuple> = HashMap::new();
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            for port in [1000u16, 2000, 3000, 4000] {
                let t = FiveTuple::new(
                    Ipv4Addr::new(10, 5, a, b),
                    port,
                    Ipv4Addr::new(10, 0, 0, 2),
                    80,
                    Protocol::Tcp,
                );
                if let Some(prev) = seen.insert(t.fid(), t) {
                    if prev != t {
                        return (prev, t);
                    }
                }
            }
        }
    }
    panic!("no collision found");
}

fn packet(t: &FiveTuple, i: u32) -> Packet {
    let mut b = PacketBuilder::tcp();
    b.src(SocketAddrV4::new(t.src_ip, t.src_port))
        .dst(SocketAddrV4::new(t.dst_ip, t.dst_port))
        .seq(i)
        .payload(format!("pkt-{i}").as_bytes());
    b.build()
}

#[test]
fn colliding_flow_takes_original_path() {
    let (ta, tb) = colliding_tuples();
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 20));
    // Owner flow takes slow-then-fast path.
    assert_eq!(chain.process(packet(&ta, 0)).path, PathKind::Initial);
    assert_eq!(chain.process(packet(&ta, 1)).path, PathKind::Subsequent);
    // The colliding flow is never fast-pathed and never corrupts the
    // owner's rule.
    for i in 0..4 {
        let out = chain.process(packet(&tb, i));
        assert_eq!(out.path, PathKind::Baseline, "collision packets ride the original chain");
        assert!(out.survived());
    }
    // Owner still fast-paths.
    assert_eq!(chain.process(packet(&ta, 2)).path, PathKind::Subsequent);
    // Exactly one rule installed (the owner's).
    assert_eq!(chain.sbox().unwrap().global.len(), 1);
}

#[test]
fn collision_outputs_match_baseline() {
    let (ta, tb) = colliding_tuples();
    let mut pkts = Vec::new();
    for i in 0..6u32 {
        pkts.push(packet(&ta, i));
        pkts.push(packet(&tb, i));
    }
    let base = BessChain::original(ipfilter_chain(2, 20)).run(pkts.clone());
    let fast = BessChain::speedybox(ipfilter_chain(2, 20)).run(pkts);
    assert_eq!(base.outputs.len(), fast.outputs.len());
    for (a, b) in base.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
}

#[test]
fn collision_fin_does_not_tear_down_owner_rule() {
    let (ta, tb) = colliding_tuples();
    let mut chain = BessChain::speedybox(ipfilter_chain(1, 10));
    chain.process(packet(&ta, 0));
    assert_eq!(chain.sbox().unwrap().global.len(), 1);
    // Colliding flow sends a FIN: the owner's rule must survive.
    let mut fin = PacketBuilder::tcp();
    fin.src(SocketAddrV4::new(tb.src_ip, tb.src_port))
        .dst(SocketAddrV4::new(tb.dst_ip, tb.dst_port))
        .flags(speedybox::packet::TcpFlags::FIN | speedybox::packet::TcpFlags::ACK);
    chain.process(fin.build());
    assert_eq!(chain.sbox().unwrap().global.len(), 1, "owner rule survives foreign FIN");
    assert_eq!(chain.process(packet(&ta, 1)).path, PathKind::Subsequent);
}

#[test]
fn monitor_state_shared_across_collision_matches_baseline() {
    // NFs key per-flow state by FID, so colliding flows share counters —
    // in SpeedyBox *and* in the baseline (which keys by the same ingress
    // hash). The equivalence contract is "same as baseline", not
    // "collision-free".
    let (ta, tb) = colliding_tuples();
    let mk_run = |speedybox: bool| -> u64 {
        let mon = Monitor::new();
        let nfs: Vec<Box<dyn Nf>> = vec![Box::new(mon.clone())];
        let mut chain =
            if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
        for i in 0..5 {
            chain.process(packet(&ta, i));
            chain.process(packet(&tb, i));
        }
        mon.counters(ta.fid()).map(|c| c.packets).unwrap_or(0)
    };
    assert_eq!(mk_run(false), mk_run(true));
}

#[test]
fn classifier_reports_collision_class() {
    let (ta, tb) = colliding_tuples();
    let chain = BessChain::speedybox(ipfilter_chain(1, 10));
    let sbox = chain.sbox().unwrap();
    let mut ops = speedybox::mat::OpCounter::default();
    let mut pa = packet(&ta, 0);
    sbox.classifier.classify(&mut pa, &mut ops).unwrap();
    assert_eq!(sbox.classifier.peek(&tb), PacketClass::Collision);
}
