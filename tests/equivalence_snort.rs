//! §VII-C1: "Testing Snort (different conditional branches)".
//!
//! "We inject three sets of flows containing suspicious payloads that
//! match all the three types of inspection rules (Pass/Alert/Log) of Snort
//! to cover the conditional branches sufficiently. We examine and find the
//! log outputs are identical."

use speedybox::nf::snort::{LogEntry, SnortLite};
use speedybox::nf::Nf;
use speedybox::packet::{Packet, PacketBuilder, TcpFlags};
use speedybox::platform::bess::BessChain;
use speedybox::platform::onvm::OnvmChain;

const RULES: &str = r#"
pass tcp any any -> any any (content:"healthcheck";)
alert tcp any any -> any 80 (msg:"evil GET"; content:"evil";)
alert tcp any any -> any any (msg:"exfil"; content:"XFIL"; content:"BEGIN";)
alert tcp any any -> any any (msg:"traversal"; pcre:"/(\.\./)+etc/";)
log tcp any any -> any any (msg:"probe"; content:"probe";)
log udp any any -> any any (msg:"udp beacon"; content:"beacon";)
"#;

/// Three TCP flow classes (pass/alert/log) plus a UDP log flow, 5 packets
/// each, interleaved round-robin the way real traffic arrives.
fn traffic() -> Vec<Packet> {
    let tcp_flows: [(&str, &[u8]); 5] = [
        ("10.0.0.1:1000", b"healthcheck evil probe"), // pass rule wins
        ("10.0.0.1:2000", b"GET /evil HTTP/1.1"),     // alert (port 80)
        ("10.0.0.1:3000", b"XFIL BEGIN data data"),   // alert (two contents)
        ("10.0.0.1:4000", b"a probe packet"),         // log
        ("10.0.0.1:4500", b"GET /../../etc/passwd"),  // alert (pcre)
    ];
    let mut out = Vec::new();
    for round in 0..5u32 {
        for (src, payload) in tcp_flows {
            out.push(
                PacketBuilder::tcp()
                    .src(src.parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .seq(round)
                    .payload(payload)
                    .build(),
            );
        }
        out.push(
            PacketBuilder::udp()
                .src("10.0.0.1:5000".parse().unwrap())
                .dst("10.0.0.2:53".parse().unwrap())
                .payload(b"udp beacon ping")
                .build(),
        );
    }
    out
}

fn run_bess(speedybox: bool) -> Vec<LogEntry> {
    let ids = SnortLite::from_rules_text(RULES).expect("rules parse");
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(ids.clone())];
    let mut chain = if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
    chain.run(traffic());
    ids.log()
}

fn run_onvm(speedybox: bool) -> Vec<LogEntry> {
    let ids = SnortLite::from_rules_text(RULES).expect("rules parse");
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(ids.clone())];
    let mut chain = if speedybox { OnvmChain::speedybox(nfs) } else { OnvmChain::original(nfs) };
    chain.run(traffic());
    ids.log()
}

#[test]
fn log_outputs_identical_on_bess() {
    let original = run_bess(false);
    let speedy = run_bess(true);
    assert!(!original.is_empty(), "rules must fire");
    assert_eq!(original, speedy);
}

#[test]
fn log_outputs_identical_on_onvm() {
    let original = run_onvm(false);
    let speedy = run_onvm(true);
    assert_eq!(original, speedy);
}

#[test]
fn all_three_branches_covered() {
    let log = run_bess(true);
    // Pass flow: silent. Two alert flows and two log flows fire per packet.
    let alerts = log.iter().filter(|e| e.action == speedybox::nf::snort::RuleAction::Alert).count();
    let logs = log.iter().filter(|e| e.action == speedybox::nf::snort::RuleAction::Log).count();
    assert_eq!(alerts, 15, "3 alert flows x 5 packets (incl. the pcre rule)");
    assert_eq!(logs, 10, "2 log flows x 5 packets");
    assert!(log.iter().any(|e| e.msg == "traversal"), "pcre rule fires");
    assert!(!log.iter().any(|e| e.msg.contains("healthcheck")), "pass flow is silent");
}

#[test]
fn fin_cleanup_then_new_flow_reinspects() {
    let ids = SnortLite::from_rules_text(RULES).expect("rules parse");
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(ids.clone())];
    let mut chain = BessChain::speedybox(nfs);
    let mk = |flags: u8, payload: &[u8]| {
        PacketBuilder::tcp()
            .src("10.0.0.1:2000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(flags)
            .payload(payload)
            .build()
    };
    chain.process(mk(TcpFlags::SYN, b""));
    chain.process(mk(TcpFlags::ACK, b"evil one"));
    chain.process(mk(TcpFlags::FIN | TcpFlags::ACK, b""));
    // New connection on the same 5-tuple: must take the slow path again
    // and still inspect.
    let out = chain.process(mk(TcpFlags::ACK, b"evil two"));
    assert_eq!(out.path, speedybox::platform::PathKind::Initial);
    assert_eq!(ids.log().len(), 2);
}
