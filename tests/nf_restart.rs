//! Tier-1 NF crash/restart sweep: every registry chain survives scripted
//! NF kills with chain-consistent recovery — snapshot restore plus
//! in-flight log replay — and stays byte- and counter-identical to the
//! naive reference oracle.
//!
//! One `#[test]` per chain so the sweep parallelizes across the harness's
//! worker threads. Each test runs 32 seeds x {bess,onvm} x batch {1,8}
//! with a generated NF fault plan (kills, recoveries, explicit snapshots)
//! layered over the usual backend-churn faults, and requires zero
//! divergences. A mutation twin seeds the skip-snapshot-replay recovery
//! bug and requires the referee to flag it.

#![allow(clippy::cast_possible_truncation)] // seed counts fit any usize

use speedybox::sim::{
    generate, run_case, BugKind, EnvKind, Fault, FaultPlan, ScenarioConfig, SimCase,
};

const SEEDS: u64 = 32;

fn sweep_chain(chain: &str) {
    let mut cases = 0usize;
    let mut kills = 0usize;
    for seed in 0..SEEDS {
        let scenario = generate(&ScenarioConfig {
            seed,
            chain: chain.to_owned(),
            with_faults: true,
            nf_faults: true,
        });
        kills +=
            scenario.faults.faults.iter().filter(|f| matches!(f.fault, Fault::KillNf(_))).count();
        for env in [EnvKind::Bess, EnvKind::Onvm] {
            for batch in [1usize, 8] {
                let case = SimCase {
                    chain: chain.to_owned(),
                    env,
                    compiled: true,
                    batch,
                    workers: 1,
                    seed,
                    max_flows: 0,
                    bug: None,
                    items: scenario.items.clone(),
                    faults: scenario.faults.clone(),
                };
                let out = run_case(&case).unwrap_or_else(|e| {
                    panic!("chain={chain} env={} seed={seed}: {e}", env.as_str())
                });
                assert!(
                    out.divergence.is_none(),
                    "chain={chain} env={} batch={batch} seed={seed}: {:?}",
                    env.as_str(),
                    out.divergence
                );
                cases += 1;
            }
        }
    }
    assert_eq!(cases, (SEEDS as usize) * 4);
    assert!(kills >= SEEDS as usize, "every seed's plan must kill at least one NF");
}

#[test]
fn nf_restart_chain1() {
    sweep_chain("chain1");
}

#[test]
fn nf_restart_chain2() {
    sweep_chain("chain2");
}

#[test]
fn nf_restart_snort_monitor() {
    sweep_chain("snort-monitor");
}

#[test]
fn nf_restart_ipfilter3() {
    sweep_chain("ipfilter:3");
}

#[test]
fn nf_restart_synthetic3() {
    sweep_chain("synthetic:3");
}

#[test]
fn nf_restart_vpn_tunnel() {
    sweep_chain("vpn-tunnel");
}

#[test]
fn nf_restart_dos_mitigation() {
    sweep_chain("dos-mitigation");
}

#[test]
fn nf_restart_maglev_failover() {
    sweep_chain("maglev-failover");
}

#[test]
fn nf_restart_snort() {
    sweep_chain("snort");
}

/// Mutation twin: a recovery path that restores the checkpoint but skips
/// the in-flight log replay silently loses every packet since the last
/// snapshot. The counter cross-check must flag it on a stateful chain.
#[test]
fn skip_snapshot_replay_twin_is_flagged() {
    for chain in ["snort-monitor", "chain2"] {
        let mut flagged = 0usize;
        for seed in 0..8u64 {
            let scenario = generate(&ScenarioConfig {
                seed,
                chain: chain.to_owned(),
                with_faults: false,
                nf_faults: false,
            });
            let case = SimCase {
                chain: chain.to_owned(),
                env: EnvKind::Bess,
                compiled: true,
                batch: 1,
                workers: 1,
                seed,
                max_flows: 0,
                bug: Some(BugKind::SkipSnapshotReplay),
                items: scenario.items,
                faults: FaultPlan::parse("nfkill@25=0;nfrecover@40=0").unwrap(),
            };
            let out = run_case(&case).unwrap();
            if out.divergence.is_some() {
                flagged += 1;
            }
        }
        assert_eq!(flagged, 8, "chain={chain}: every seeded-bug run must diverge");
    }
}
