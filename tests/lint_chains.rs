//! Acceptance gate for the static verifier: every registry chain must lint
//! with zero Error-level diagnostics. CI runs this test; a chain change
//! that introduces an Error finding fails the build.
//!
//! All chains are linted inside ONE test function: the payload-access
//! tracker behind `SBX010` is process-global, and serializing the lints
//! keeps each chain's findings attributable.

use speedybox::lint::{lint_chain, LINT_ALL};

#[test]
fn all_registry_chains_lint_clean() {
    for name in LINT_ALL {
        let report = lint_chain(name).unwrap_or_else(|e| panic!("lint {name}: {e}"));
        assert!(
            !report.has_errors(),
            "chain {name} has Error-level findings:\n{}",
            report.render_text()
        );
        // Parameterized sizes beyond the registry defaults stay clean too.
        if name.starts_with("ipfilter") || name.starts_with("synthetic") {
            let bigger = name.replace(":3", ":6");
            let report = lint_chain(&bigger).unwrap();
            assert!(!report.has_errors(), "{bigger}:\n{}", report.render_text());
        }
    }
}

#[test]
fn lint_reports_render_both_formats() {
    let report = lint_chain("vpn-tunnel").unwrap();
    let text = report.render_text();
    assert!(text.contains("vpn-tunnel:"), "{text}");
    assert!(text.ends_with('\n'), "text rendering must be newline-terminated");
    let json = report.to_json();
    assert!(json.contains("\"chain\":\"vpn-tunnel\""), "{json}");
    assert!(json.contains("\"diagnostics\":["), "{json}");
}
