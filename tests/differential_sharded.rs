//! Differential suite for the sharded/batched fast path.
//!
//! The sharded classifier + Global MAT and the batched entry points
//! (`classify_batch` / `process_batch`) are pure lock-granularity
//! optimizations: for any workload they must produce **byte-identical
//! packet outputs**, identical per-NF counters (Monitor totals, Snort
//! logs, NAT mappings), and identical Event Table firings compared to the
//! per-packet path (`batch_size == 1`, which is the seed code path).
//! These properties are fuzzed here over the paper's two real-world
//! chains with randomized flow mixes, batch sizes, and shard counts.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use speedybox::mat::{Event, NfId, RulePatch};
use speedybox::packet::{Fid, Packet};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::{chain1, chain2, Chain2Handles};
use speedybox::platform::onvm::OnvmChain;
use speedybox::platform::runtime::SboxConfig;
use speedybox::traffic::{Workload, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> Vec<Packet> {
    Workload::generate(&WorkloadConfig {
        flows,
        median_packets: 6.0,
        payload_len: 96,
        suspicious_fraction: 0.25,
        seed,
        ..WorkloadConfig::default()
    })
    .packets()
}

fn sbox_config(batch_size: usize, shards: usize) -> SboxConfig {
    SboxConfig { batch_size, shards, ..SboxConfig::default() }
}

/// Registers a one-shot counting event on every 3rd distinct flow of the
/// workload. The condition is always true, so each event fires on its
/// flow's first fast-path packet and forces a mid-stream re-consolidation
/// and rule reinstall — exactly the path where a stale cached rule handle
/// in the batched fast path would become observable.
fn register_counting_events(
    events: &speedybox::mat::EventTable,
    packets: &[Packet],
    nf: NfId,
) -> Arc<AtomicU64> {
    let fires = Arc::new(AtomicU64::new(0));
    let mut seen: HashSet<Fid> = HashSet::new();
    for p in packets {
        let fid = p.five_tuple().expect("tcp workload").fid();
        if seen.insert(fid) && seen.len().is_multiple_of(3) {
            let fires = Arc::clone(&fires);
            events.register(Event::new(
                fid,
                nf,
                "count-fire",
                |_| true,
                move |_| {
                    fires.fetch_add(1, Ordering::Relaxed);
                    RulePatch::default()
                },
            ));
        }
    }
    fires
}

/// Everything we compare between the per-packet and batched runs.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    outputs: Vec<Vec<u8>>,
    delivered: usize,
    dropped: usize,
    path_counts: [usize; 3],
    monitor_totals: (u64, u64),
    nat_mappings: usize,
    event_fires: u64,
    event_checks: u64,
}

fn run_chain1(packets: &[Packet], batch_size: usize, shards: usize) -> Observation {
    let (nfs, handles) = chain1(4);
    let mut chain = BessChain::speedybox_with(nfs, sbox_config(batch_size, shards));
    let fires = register_counting_events(
        chain.sbox().expect("speedybox enabled").global.events(),
        packets,
        NfId::new(1), // Maglev — the NF the paper registers events for
    );
    let stats = chain.run(packets.iter().cloned());
    let snapshot = handles.monitor.snapshot();
    let totals = snapshot.values().fold((0u64, 0u64), |a, c| (a.0 + c.packets, a.1 + c.bytes));
    Observation {
        outputs: stats.outputs.iter().map(|p| p.as_bytes().to_vec()).collect(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        path_counts: stats.path_counts,
        monitor_totals: totals,
        nat_mappings: handles.nat.mapping_count(),
        event_fires: fires.load(Ordering::Relaxed),
        event_checks: stats.ops.event_checks,
    }
}

/// Chain 2 runs on the OpenNetVM-style environment so both batched
/// platforms are covered; Snort logs stand in for the NAT observation.
fn run_chain2(packets: &[Packet], batch_size: usize, shards: usize) -> (Observation, Vec<String>) {
    let (nfs, Chain2Handles { snort, monitor }) = chain2();
    let mut chain = OnvmChain::speedybox_with(nfs, sbox_config(batch_size, shards));
    let fires = register_counting_events(
        chain.sbox().expect("speedybox enabled").global.events(),
        packets,
        NfId::new(0), // IPFilter
    );
    let stats = chain.run(packets.iter().cloned());
    let snapshot = monitor.snapshot();
    let totals = snapshot.values().fold((0u64, 0u64), |a, c| (a.0 + c.packets, a.1 + c.bytes));
    let logs = snort.log().into_iter().map(|e| format!("{:?} {}", e.action, e.msg)).collect();
    let obs = Observation {
        outputs: stats.outputs.iter().map(|p| p.as_bytes().to_vec()).collect(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        path_counts: stats.path_counts,
        monitor_totals: totals,
        nat_mappings: 0,
        event_fires: fires.load(Ordering::Relaxed),
        event_checks: stats.ops.event_checks,
    };
    (obs, logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chain 1 (MazuNAT → Maglev → Monitor → IPFilter, BESS-style):
    /// batched + sharded runs are observably identical to per-packet.
    #[test]
    fn chain1_batched_matches_per_packet(
        flows in 8usize..40,
        seed in 1u64..10_000,
        batch in 2usize..48,
        shards in prop_oneof![Just(1usize), Just(4usize), Just(16usize)],
    ) {
        let packets = workload(flows, seed);
        let base = run_chain1(&packets, 1, 16);
        let sharded = run_chain1(&packets, batch, shards);
        prop_assert!(base.event_fires > 0, "events must actually fire");
        prop_assert_eq!(base, sharded);
    }

    /// Chain 2 (IPFilter → Snort → Monitor, OpenNetVM-style): identical
    /// outputs, Snort logs, Monitor counters, and event firings.
    #[test]
    fn chain2_batched_matches_per_packet(
        flows in 8usize..40,
        seed in 1u64..10_000,
        batch in 2usize..48,
        shards in prop_oneof![Just(1usize), Just(4usize), Just(16usize)],
    ) {
        let packets = workload(flows, seed);
        let (base, logs_base) = run_chain2(&packets, 1, 16);
        let (sharded, logs_sharded) = run_chain2(&packets, batch, shards);
        prop_assert!(base.event_fires > 0, "events must actually fire");
        prop_assert_eq!(base, sharded);
        prop_assert_eq!(logs_base, logs_sharded);
    }
}

/// Deterministic spot-check so a failure here is easy to bisect without
/// the proptest harness: one mid-size workload, every batch size in a
/// sweep, both chains.
#[test]
fn batch_size_sweep_is_invariant() {
    let packets = workload(24, 7);
    let base1 = run_chain1(&packets, 1, 16);
    let (base2, logs2) = run_chain2(&packets, 1, 16);
    for batch in [2, 3, 8, 17, 32, 256] {
        assert_eq!(base1, run_chain1(&packets, batch, 4), "chain1 batch {batch}");
        let (obs, logs) = run_chain2(&packets, batch, 4);
        assert_eq!(base2, obs, "chain2 batch {batch}");
        assert_eq!(logs2, logs, "chain2 logs batch {batch}");
    }
}
