//! Zero-allocation steady-state gate (DESIGN.md §15.4).
//!
//! Installs a counting global allocator and proves the claim the pooled
//! packet substrate exists to make: once warm, the batched data path —
//! pooled copy-in, classify, consolidated fast path, recycle — performs
//! **zero** heap allocations per batch on the paper's chain1
//! (MazuNAT → Maglev → Monitor → IPFilter).
//!
//! This lives in its own integration-test binary because the global
//! allocator is process-wide: sibling tests running on other threads
//! would show up in the counters. Keep this file to a single `#[test]`.

#![forbid(unsafe_code)]

use allocmeter::CountingAlloc;
use speedybox_packet::{Magazine, Packet, PacketBuilder};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::chain1;
use speedybox_platform::runtime::SboxConfig;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const BATCH: usize = 32;
const FLOWS: u16 = 8;

/// A heap-built template batch: FLOWS flows, BATCH/FLOWS packets each,
/// plain established-connection data segments (no FIN/RST, so no flow
/// teardown ever runs in the measured region).
fn template() -> Vec<Packet> {
    (0..BATCH)
        .map(|i| {
            PacketBuilder::tcp()
                .src({
                    let port = 1000 + u16::try_from(i).expect("small batch") % FLOWS;
                    format!("10.0.0.1:{port}").parse().unwrap()
                })
                .dst("10.0.0.2:80".parse().unwrap())
                .payload(format!("pkt-{i}").as_bytes())
                .build()
        })
        .collect()
}

fn run_batch(
    chain: &mut BessChain,
    mag: &mut Magazine,
    template: &[Packet],
    input: &mut Vec<Packet>,
    out: &mut Vec<speedybox_platform::metrics::ProcessedPacket>,
) {
    // Pooled copy-in: the explicit clone-for-rerun, through the magazine.
    for p in template {
        input.push(mag.copy_packet(p));
    }
    chain.process_batch_into(input, out);
    // Recycle the batch's survivors (drops were recycled by the chain).
    for o in out.drain(..) {
        if let Some(pkt) = o.packet {
            mag.give_packet(pkt);
        }
    }
}

#[test]
fn steady_state_batch_allocates_nothing() {
    let (nfs, _handles) = chain1(8);
    let mut chain =
        BessChain::speedybox_with(nfs, SboxConfig { batch_size: BATCH, ..SboxConfig::default() });
    let mut mag = Magazine::new(Arc::clone(chain.pool()));
    let template = template();
    let mut input: Vec<Packet> = Vec::with_capacity(BATCH);
    let mut out = Vec::with_capacity(BATCH);

    // Warmup: first batch takes the slow path (traversal + consolidation
    // + rule install), later ones grow every scratch capacity and seed
    // the pool with recycled buffers.
    for _ in 0..16 {
        run_batch(&mut chain, &mut mag, &template, &mut input, &mut out);
    }
    let warm = chain.telemetry().snapshot();
    assert!(
        warm.paths[2] >= warm.packets - BATCH as u64,
        "every batch after the first must ride the fast path: {} of {}",
        warm.paths[2],
        warm.packets
    );

    // Measured region: the steady state must not touch the heap at all.
    let before = ALLOC.snapshot();
    const MEASURED: usize = 16;
    for _ in 0..MEASURED {
        run_batch(&mut chain, &mut mag, &template, &mut input, &mut out);
    }
    let after = ALLOC.snapshot();
    let allocs = after.allocs - before.allocs;
    let bytes = after.bytes - before.bytes;
    assert_eq!(
        allocs, 0,
        "steady-state data path hit the heap: {allocs} allocations ({bytes} bytes) \
         across {MEASURED} batches of {BATCH}"
    );

    // The batches above were served entirely by the pool: every buffer
    // request a hit, none falling back to the heap.
    let snap = chain.telemetry().snapshot();
    assert_eq!(snap.pool_misses, chain.pool().stats().misses, "telemetry tracks the pool");
    let measured_packets = (MEASURED * BATCH) as u64;
    assert!(
        snap.pool_hits >= measured_packets,
        "pooled copies must be pool hits: {} < {measured_packets}",
        snap.pool_hits
    );
}
