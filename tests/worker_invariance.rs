//! Worker-count invariance for the symmetric run-to-completion runtime.
//!
//! Two layers are proven here, mirroring the shard-invariance suite:
//!
//! 1. **Deterministic model** (`SboxConfig::workers` on `BessChain` /
//!    `OnvmChain`): the worker count only redistributes *attribution* of
//!    work across FID slices — outputs, drop decisions, path mix, NF
//!    counters, and Event Table firings must be exactly identical at
//!    1/2/4/8 workers, and per-worker cycle totals must conserve the
//!    overall work.
//! 2. **Real threads** (`run_workers`): N OS threads share one classifier
//!    and Global MAT via wait-free generation loads. Flows are partitioned
//!    by FID slice, so per-flow packet order is preserved; outputs are
//!    compared as sorted multisets and per-flow sequences, the way a
//!    multi-queue NIC deployment would be validated.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use speedybox::mat::{Event, NfId, RulePatch};
use speedybox::nf::ipfilter::IpFilter;
use speedybox::nf::monitor::Monitor;
use speedybox::nf::Nf;
use speedybox::packet::{Fid, Packet};
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::{chain1, chain2, Chain2Handles};
use speedybox::platform::onvm::OnvmChain;
use speedybox::platform::runtime::SboxConfig;
use speedybox::platform::workers::run_workers;
use speedybox::traffic::{Workload, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> Vec<Packet> {
    Workload::generate(&WorkloadConfig {
        flows,
        median_packets: 6.0,
        payload_len: 96,
        suspicious_fraction: 0.25,
        seed,
        ..WorkloadConfig::default()
    })
    .packets()
}

fn sbox_config(workers: usize, batch_size: usize) -> SboxConfig {
    SboxConfig { workers, batch_size, ..SboxConfig::default() }
}

/// Same one-shot counting events as the shard-invariance suite: fire on
/// every 3rd distinct flow's first fast-path packet, forcing mid-stream
/// re-consolidations whose timing must not depend on the worker count.
fn register_counting_events(
    events: &speedybox::mat::EventTable,
    packets: &[Packet],
    nf: NfId,
) -> Arc<AtomicU64> {
    let fires = Arc::new(AtomicU64::new(0));
    let mut seen: HashSet<Fid> = HashSet::new();
    for p in packets {
        let fid = p.five_tuple().expect("tcp workload").fid();
        if seen.insert(fid) && seen.len().is_multiple_of(3) {
            let fires = Arc::clone(&fires);
            events.register(Event::new(
                fid,
                nf,
                "count-fire",
                |_| true,
                move |_| {
                    fires.fetch_add(1, Ordering::Relaxed);
                    RulePatch::default()
                },
            ));
        }
    }
    fires
}

/// Everything compared between worker counts on the deterministic model.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    outputs: Vec<Vec<u8>>,
    delivered: usize,
    dropped: usize,
    path_counts: [usize; 3],
    monitor_totals: (u64, u64),
    nat_mappings: usize,
    event_fires: u64,
    event_checks: u64,
}

/// Work-conservation facts about a run, checked separately from the
/// equality comparison (they legitimately vary with the worker count).
struct WorkerFacts {
    worker_cycles: Vec<u64>,
    worker_wall: u64,
    total_work: u64,
}

fn run_chain1(packets: &[Packet], workers: usize, batch: usize) -> (Observation, WorkerFacts) {
    let (nfs, handles) = chain1(4);
    let mut chain = BessChain::speedybox_with(nfs, sbox_config(workers, batch));
    let fires = register_counting_events(
        chain.sbox().expect("speedybox enabled").global.events(),
        packets,
        NfId::new(1),
    );
    let stats = chain.run(packets.iter().cloned());
    let snapshot = handles.monitor.snapshot();
    let totals = snapshot.values().fold((0u64, 0u64), |a, c| (a.0 + c.packets, a.1 + c.bytes));
    let obs = Observation {
        outputs: stats.outputs.iter().map(|p| p.as_bytes().to_vec()).collect(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        path_counts: stats.path_counts,
        monitor_totals: totals,
        nat_mappings: handles.nat.mapping_count(),
        event_fires: fires.load(Ordering::Relaxed),
        event_checks: stats.ops.event_checks,
    };
    let facts = WorkerFacts {
        worker_cycles: stats.worker_cycles.clone(),
        worker_wall: stats.worker_wall_cycles,
        total_work: stats.work_cycles.iter().sum(),
    };
    (obs, facts)
}

fn run_chain2(packets: &[Packet], workers: usize, batch: usize) -> (Observation, Vec<String>) {
    let (nfs, Chain2Handles { snort, monitor }) = chain2();
    let mut chain = OnvmChain::speedybox_with(nfs, sbox_config(workers, batch));
    let fires = register_counting_events(
        chain.sbox().expect("speedybox enabled").global.events(),
        packets,
        NfId::new(0),
    );
    let stats = chain.run(packets.iter().cloned());
    let snapshot = monitor.snapshot();
    let totals = snapshot.values().fold((0u64, 0u64), |a, c| (a.0 + c.packets, a.1 + c.bytes));
    let logs = snort.log().into_iter().map(|e| format!("{:?} {}", e.action, e.msg)).collect();
    let obs = Observation {
        outputs: stats.outputs.iter().map(|p| p.as_bytes().to_vec()).collect(),
        delivered: stats.delivered,
        dropped: stats.dropped,
        path_counts: stats.path_counts,
        monitor_totals: totals,
        nat_mappings: 0,
        event_fires: fires.load(Ordering::Relaxed),
        event_checks: stats.ops.event_checks,
    };
    (obs, logs)
}

/// Checks the work ledger: per-worker totals sum to the overall work, and
/// the modeled wall time never exceeds total work nor undercuts a perfect
/// split across the worker slots.
fn assert_conservation(facts: &WorkerFacts, workers: usize, label: &str) {
    assert_eq!(facts.worker_cycles.len(), workers.next_power_of_two(), "{label}: slot count");
    assert_eq!(
        facts.worker_cycles.iter().sum::<u64>(),
        facts.total_work,
        "{label}: per-worker cycles must conserve total work"
    );
    assert!(facts.worker_wall <= facts.total_work, "{label}: wall exceeds total work");
    let slots = facts.worker_cycles.len() as u64;
    assert!(
        facts.worker_wall >= facts.total_work / slots,
        "{label}: wall beats a perfect {slots}-way split"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chain 1 (MazuNAT → Maglev → Monitor → IPFilter): every observable
    /// is exactly identical across worker counts on the deterministic
    /// model, and each run's worker ledger conserves total work.
    #[test]
    fn chain1_workers_are_invariant(
        flows in 8usize..40,
        seed in 1u64..10_000,
        batch in prop_oneof![Just(1usize), Just(8usize), Just(32usize)],
    ) {
        let packets = workload(flows, seed);
        let (base, base_facts) = run_chain1(&packets, 1, batch);
        prop_assert!(base.event_fires > 0, "events must actually fire");
        assert_conservation(&base_facts, 1, "workers=1");
        for workers in [2usize, 4, 8] {
            let (obs, facts) = run_chain1(&packets, workers, batch);
            prop_assert_eq!(&base, &obs, "workers={}", workers);
            assert_conservation(&facts, workers, &format!("workers={workers}"));
        }
    }

    /// Chain 2 (IPFilter → Snort → Monitor, OpenNetVM-style): identical
    /// outputs, Snort logs, counters and event firings at any worker count.
    #[test]
    fn chain2_workers_are_invariant(
        flows in 8usize..40,
        seed in 1u64..10_000,
        batch in prop_oneof![Just(1usize), Just(8usize), Just(32usize)],
    ) {
        let packets = workload(flows, seed);
        let (base, logs_base) = run_chain2(&packets, 1, batch);
        prop_assert!(base.event_fires > 0, "events must actually fire");
        for workers in [2usize, 4, 8] {
            let (obs, logs) = run_chain2(&packets, workers, batch);
            prop_assert_eq!(&base, &obs, "workers={}", workers);
            prop_assert_eq!(&logs_base, &logs, "workers={}", workers);
        }
    }

    /// Real threads: N workers over a shared classifier + Global MAT
    /// deliver the same packet multiset with the same per-flow sequences
    /// as a single worker, for per-flow-ordered traffic through a chain
    /// with per-flow NF state.
    #[test]
    fn threaded_pool_is_invariant(
        flows in 4usize..24,
        seed in 1u64..10_000,
        workers in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
    ) {
        let packets = workload(flows, seed);
        let base = pool_run(&packets, 1);
        let multi = pool_run(&packets, workers);
        prop_assert_eq!(base.sorted_outputs, multi.sorted_outputs, "workers={}", workers);
        prop_assert_eq!(base.dropped, multi.dropped);
        prop_assert_eq!(base.per_flow, multi.per_flow, "per-flow order must survive steering");
        prop_assert_eq!(base.flows_opened, multi.flows_opened);
        prop_assert_eq!(base.monitor_union, multi.monitor_union);
    }
}

/// Summary of one real-thread pool run, in worker-count-comparable form.
#[derive(Debug, PartialEq, Eq)]
struct PoolObservation {
    sorted_outputs: Vec<Vec<u8>>,
    dropped: usize,
    per_flow: HashMap<u32, Vec<Vec<u8>>>,
    flows_opened: u64,
    monitor_union: Vec<(u32, u64, u64)>,
}

fn pool_run(packets: &[Packet], workers: usize) -> PoolObservation {
    let monitors: Vec<Monitor> = (0..workers.next_power_of_two()).map(|_| Monitor::new()).collect();
    let nf_sets: Vec<Vec<Box<dyn Nf>>> = monitors
        .iter()
        .map(|m| {
            vec![
                Box::new(IpFilter::pass_through(20)) as Box<dyn Nf>,
                Box::new(m.clone()) as Box<dyn Nf>,
            ]
        })
        .collect();
    let report =
        run_workers(nf_sets, packets.to_vec(), SboxConfig { workers, ..SboxConfig::default() });
    let mut sorted_outputs: Vec<Vec<u8>> =
        report.delivered.iter().map(|p| p.as_bytes().to_vec()).collect();
    sorted_outputs.sort();
    let mut per_flow: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    for p in &report.delivered {
        let fid = p.five_tuple().expect("tcp workload").fid().value();
        per_flow.entry(fid).or_default().push(p.as_bytes().to_vec());
    }
    // Flows are partitioned, so the union of per-worker monitor maps is
    // the global per-flow counter table.
    let mut monitor_union: Vec<(u32, u64, u64)> = monitors
        .iter()
        .flat_map(|m| m.snapshot().into_iter().map(|(fid, c)| (fid.value(), c.packets, c.bytes)))
        .collect();
    monitor_union.sort_unstable();
    PoolObservation {
        sorted_outputs,
        dropped: report.dropped,
        per_flow,
        flows_opened: report.snapshot.flows_opened,
        monitor_union,
    }
}

/// Deterministic spot-check, easy to bisect without the proptest harness:
/// one workload, every worker count, both chains and both batch modes —
/// plus the wall-time monotonicity fact the scaling bench relies on: at 8
/// balanced workers the modeled wall is well under the single-worker wall.
#[test]
fn worker_sweep_is_invariant() {
    let packets = workload(24, 7);
    let (base1, facts1) = run_chain1(&packets, 1, 8);
    let (base2, logs2) = run_chain2(&packets, 1, 8);
    let mut wall8 = None;
    for workers in [2, 4, 8] {
        let (obs, facts) = run_chain1(&packets, workers, 8);
        assert_eq!(base1, obs, "chain1 workers {workers}");
        assert_conservation(&facts, workers, "chain1");
        if workers == 8 {
            wall8 = Some(facts.worker_wall);
        }
        let (obs2, logs) = run_chain2(&packets, workers, 8);
        assert_eq!(base2, obs2, "chain2 workers {workers}");
        assert_eq!(logs2, logs, "chain2 logs workers {workers}");
    }
    // The generated workload is flow-bursty, so batches skew onto few
    // workers; the scaling bench uses an interleaved trace to show the full
    // speedup. Here we only require strict improvement.
    let wall8 = wall8.expect("8-worker run present");
    assert!(
        wall8 < facts1.worker_wall,
        "8 workers must beat one worker on modeled wall: {wall8} vs {}",
        facts1.worker_wall
    );
}
