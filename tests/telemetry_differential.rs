//! Differential test: the lock-free telemetry snapshot must agree with the
//! ground-truth [`RunStats`] aggregate, field for field, on every chain,
//! environment and batching mode. `RunStats` folds each
//! `ProcessedPacket` into plain (unsynchronized) counters after the run;
//! telemetry counts the same events live through relaxed atomics. Any
//! divergence means a counting site is missing, doubled, or misattributed.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use speedybox::nf::Nf;
use speedybox::packet::Packet;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains;
use speedybox::platform::onvm::OnvmChain;
use speedybox::platform::runtime::SboxConfig;
use speedybox::platform::RunStats;
use speedybox::telemetry::{TelemetrySnapshot, OP_NAMES};
use speedybox::traffic::{Workload, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> Vec<Packet> {
    Workload::generate(&WorkloadConfig { flows, seed, ..WorkloadConfig::default() }).packets()
}

fn op_index(name: &str) -> usize {
    OP_NAMES.iter().position(|&n| n == name).expect("known op name")
}

/// The full snapshot-vs-stats contract.
fn assert_matches(stats: &RunStats, snap: &TelemetrySnapshot, label: &str) {
    assert_eq!(snap.packets as usize, stats.sent, "{label}: packets != sent");
    assert_eq!(snap.delivered as usize, stats.delivered, "{label}: delivered");
    assert_eq!(snap.dropped as usize, stats.dropped, "{label}: dropped");
    for (i, path) in ["baseline", "initial", "subsequent"].iter().enumerate() {
        assert_eq!(snap.paths[i] as usize, stats.path_counts[i], "{label}: paths[{path}]");
        assert_eq!(
            snap.latency[i].count as usize, stats.path_counts[i],
            "{label}: latency[{path}].count"
        );
    }
    let total = snap.latency_total();
    assert_eq!(total.count as usize, stats.sent, "{label}: latency count");
    assert_eq!(total.sum, stats.latencies_cycles.iter().sum::<u64>(), "{label}: latency sum");
    if stats.sent > 0 {
        assert_eq!(
            total.max,
            stats.latencies_cycles.iter().copied().max().unwrap(),
            "{label}: latency max"
        );
        assert_eq!(
            total.display_min(),
            stats.latencies_cycles.iter().copied().min().unwrap(),
            "{label}: latency min"
        );
    }
    // The abstract-operation mirror must be exact for all 17 kinds.
    let expected = stats.ops.telemetry_totals();
    for (i, name) in OP_NAMES.iter().enumerate() {
        assert_eq!(snap.ops.0[i], expected.0[i], "{label}: op {name}");
    }
    // Structural invariants tying the MAT counters to the path mix.
    assert_eq!(
        snap.fastpath_hits, snap.paths[2],
        "{label}: every subsequent-path packet is exactly one Global MAT hit"
    );
    assert_eq!(
        snap.rules_installed,
        snap.ops.0[op_index("consolidations")],
        "{label}: one rule install per consolidation"
    );
    assert_eq!(
        snap.events_fired,
        snap.ops.0[op_index("event_checks")].min(snap.events_fired),
        "{label}: events fired are a subset of event checks"
    );
}

fn build(name: &str) -> Vec<Box<dyn Nf>> {
    match name {
        "chain1" => chains::chain1(8).0,
        "chain2" => chains::chain2().0,
        other => panic!("unknown chain {other}"),
    }
}

fn check_bess(chain: &str, speedybox: bool, batch_size: usize) {
    let label = format!("bess/{chain}/sbox={speedybox}/batch={batch_size}");
    let config = SboxConfig { batch_size, shards: 4, ..SboxConfig::default() };
    let mut c = if speedybox {
        BessChain::speedybox_with(build(chain), config)
    } else {
        BessChain::original(build(chain))
    };
    let stats = c.run(workload(60, 3));
    assert_matches(&stats, &c.telemetry().snapshot(), &label);
}

fn check_onvm(chain: &str, speedybox: bool, batch_size: usize) {
    let label = format!("onvm/{chain}/sbox={speedybox}/batch={batch_size}");
    let config = SboxConfig { batch_size, shards: 4, ..SboxConfig::default() };
    let mut c = if speedybox {
        OnvmChain::speedybox_with(build(chain), config)
    } else {
        OnvmChain::original(build(chain))
    };
    let stats = c.run(workload(60, 3));
    assert_matches(&stats, &c.telemetry().snapshot(), &label);
}

#[test]
fn bess_chain1_matches_run_stats() {
    for batch in [1, 8] {
        check_bess("chain1", true, batch);
    }
    check_bess("chain1", false, 1);
}

#[test]
fn bess_chain2_matches_run_stats() {
    for batch in [1, 8] {
        check_bess("chain2", true, batch);
    }
    check_bess("chain2", false, 1);
}

#[test]
fn onvm_chain1_matches_run_stats() {
    for batch in [1, 8] {
        check_onvm("chain1", true, batch);
    }
    check_onvm("chain1", false, 1);
}

#[test]
fn onvm_chain2_matches_run_stats() {
    for batch in [1, 8] {
        check_onvm("chain2", true, batch);
    }
    check_onvm("chain2", false, 1);
}

/// Two separate runs merged through `TelemetrySnapshot::merge` must equal
/// the combined `RunStats` of both — the property CI relies on when
/// aggregating per-scenario reports.
#[test]
fn merged_snapshots_match_merged_stats() {
    let config = SboxConfig { shards: 4, ..SboxConfig::default() };
    let mut a = BessChain::speedybox_with(build("chain1"), config);
    let mut b = BessChain::speedybox_with(build("chain1"), config);
    let sa = a.run(workload(40, 1));
    let sb = b.run(workload(40, 2));

    let mut combined = RunStats {
        sent: sa.sent + sb.sent,
        delivered: sa.delivered + sb.delivered,
        dropped: sa.dropped + sb.dropped,
        latencies_cycles: sa.latencies_cycles.iter().chain(&sb.latencies_cycles).copied().collect(),
        ..RunStats::default()
    };
    combined.ops.merge(&sa.ops);
    combined.ops.merge(&sb.ops);
    for i in 0..3 {
        combined.path_counts[i] = sa.path_counts[i] + sb.path_counts[i];
    }

    let mut snap = a.telemetry().snapshot();
    snap.merge(&b.telemetry().snapshot());
    assert_matches(&combined, &snap, "merged");
}

/// The exposition formats must round-trip the differential-grade numbers
/// exactly: a snapshot serialized to JSON and parsed back is the snapshot.
#[test]
fn snapshot_json_round_trips_after_real_run() {
    let mut c = BessChain::speedybox_with(
        build("chain2"),
        SboxConfig { shards: 4, ..SboxConfig::default() },
    );
    let _ = c.run(workload(50, 9));
    let snap = c.telemetry().snapshot();
    let back = TelemetrySnapshot::from_json(&snap.to_json()).expect("parse own JSON");
    assert_eq!(snap, back);
}
