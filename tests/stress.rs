//! Stress and soak tests: long chains, many flows, churn, event storms.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use speedybox::nf::dosguard::DosGuard;
use speedybox::nf::maglev::Maglev;
use speedybox::nf::monitor::Monitor;
use speedybox::nf::Nf;
use speedybox::packet::PacketBuilder;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::ipfilter_chain;
use speedybox::traffic::{Workload, WorkloadConfig};

#[test]
fn nine_nf_chain_with_heavy_flow_churn() {
    // 500 flows with FIN-based churn through the paper's longest chain.
    let w = Workload::generate(&WorkloadConfig {
        flows: 500,
        median_packets: 4.0,
        payload_len: 64,
        seed: 0xdead,
        ..WorkloadConfig::default()
    });
    let mut chain = BessChain::speedybox(ipfilter_chain(9, 50));
    let stats = chain.run(w.packets());
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.path_counts[1], 500, "one slow-path packet per flow");
    // All flows FIN'd: every table drained.
    let sbox = chain.sbox().unwrap();
    assert!(sbox.global.is_empty());
    assert!(sbox.classifier.is_empty());
    assert!(sbox.global.locals().iter().all(|l| l.is_empty()));
}

#[test]
fn reopened_flows_get_fresh_rules() {
    // The same 5-tuple opens, closes and reopens 50 times; each connection
    // must re-record (the classifier forgets it on FIN).
    let mut chain = BessChain::speedybox(ipfilter_chain(3, 20));
    let mut initial_count = 0;
    for round in 0..50u32 {
        let mut b = PacketBuilder::tcp();
        b.src("10.0.0.1:4444".parse().unwrap()).dst("10.0.0.2:80".parse().unwrap());
        let syn = b.flags(speedybox::packet::TcpFlags::SYN).seq(round * 3).build();
        let dat = b.flags(speedybox::packet::TcpFlags::ACK).payload(b"x").build();
        let fin = b
            .flags(speedybox::packet::TcpFlags::FIN | speedybox::packet::TcpFlags::ACK)
            .payload(&[])
            .build();
        for p in [syn, dat, fin] {
            let out = chain.process(p);
            if out.path == speedybox::platform::PathKind::Initial {
                initial_count += 1;
            }
        }
    }
    assert_eq!(initial_count, 50, "every reopened connection re-records");
    assert!(chain.sbox().unwrap().global.is_empty());
}

#[test]
fn event_storm_under_backend_flapping() {
    // Maglev with a backend that flaps every 40 packets while 60 flows
    // stream: every packet must still be delivered to a live backend, and
    // the chain must never wedge.
    let maglev = Maglev::new(
        (0..4)
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect::<Vec<(String, _)>>(),
        251,
    );
    let mon = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone()), Box::new(mon)];
    let mut chain = BessChain::speedybox(nfs);

    let mut delivered = 0;
    for i in 0..2000u32 {
        if i % 80 == 40 {
            maglev.fail_backend("backend-0");
        }
        if i % 80 == 79 {
            maglev.recover_backend("backend-0");
        }
        let p = PacketBuilder::tcp()
            .src(format!("10.0.0.1:{}", 3000 + (i % 60) as u16).parse().unwrap())
            .dst("10.99.99.99:80".parse().unwrap())
            .seq(i)
            .payload(b"stream")
            .build();
        let out = chain.process(p);
        if let Some(pkt) = out.packet {
            delivered += 1;
            let dst = pkt.get_field(speedybox::packet::HeaderField::DstIp).unwrap().as_ipv4();
            assert_eq!(dst.octets()[..3], [10, 1, 0], "always a backend address");
        }
    }
    assert_eq!(delivered, 2000, "no packet lost to flapping");
}

#[test]
fn dos_guard_blocks_attackers_not_bystanders_at_scale() {
    let guard = DosGuard::new(10);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(guard)];
    let mut chain = BessChain::speedybox(nfs);
    let mut dropped_attacker = 0;
    let mut delivered_legit = 0;
    for i in 0..1500u32 {
        // One SYN-flooding flow interleaved with 20 normal flows.
        let attacker = PacketBuilder::tcp()
            .src("203.0.113.1:6666".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(speedybox::packet::TcpFlags::SYN)
            .seq(i)
            .build();
        if !chain.process(attacker).survived() {
            dropped_attacker += 1;
        }
        let legit = PacketBuilder::tcp()
            .src(format!("10.0.0.1:{}", 2000 + (i % 20) as u16).parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .seq(i)
            .payload(b"ok")
            .build();
        if chain.process(legit).survived() {
            delivered_legit += 1;
        }
    }
    assert_eq!(delivered_legit, 1500, "no collateral damage");
    assert!(dropped_attacker >= 1500 - 12, "attacker blocked after threshold");
}

#[test]
fn large_flow_population_with_aging_stays_bounded() {
    // 4000 UDP flows with periodic aging: table sizes stay bounded by the
    // active set, not the total population.
    let mut chain = BessChain::speedybox(ipfilter_chain(2, 10));
    let mut max_rules = 0usize;
    for wave in 0..8u16 {
        for f in 0..500u16 {
            let p = PacketBuilder::udp()
                .src(format!("10.0.{}.{}:53", wave, (f % 250) + 1).parse().unwrap())
                .dst(format!("10.9.0.1:{}", 10000 + f).parse().unwrap())
                .payload(b"udp")
                .build();
            chain.process(p);
        }
        chain.sbox().unwrap().expire_idle_flows(600);
        max_rules = max_rules.max(chain.sbox().unwrap().global.len());
    }
    assert!(max_rules <= 1100, "rule table should track the active window, got {max_rules}");
}

#[test]
fn telemetry_stays_consistent_under_threaded_churn() {
    // The heavy-churn workload from above, but on the real thread-per-NF
    // runtime: NF threads record op counters concurrently with the
    // manager's packet records, and the final merged snapshot must still
    // account for every packet exactly once.
    use speedybox::platform::threaded::ThreadedOnvm;
    let w = Workload::generate(&WorkloadConfig {
        flows: 300,
        median_packets: 4.0,
        payload_len: 64,
        seed: 0xbeef,
        ..WorkloadConfig::default()
    });
    let packets = w.packets();
    let total = packets.len();
    let report = ThreadedOnvm::run_batched(ipfilter_chain(4, 50), packets, true, 16);
    let s = &report.snapshot;
    assert_eq!(s.packets as usize, total, "every packet counted once");
    assert_eq!(s.delivered as usize, report.delivered.len());
    assert_eq!(s.dropped as usize, report.dropped);
    assert_eq!(s.delivered + s.dropped, s.packets);
    let lat = s.latency_total();
    assert_eq!(lat.count as usize, total);
    assert_eq!(lat.sum, report.latencies_ns.iter().sum::<u64>());
    assert_eq!(s.fastpath_hits, s.paths[2], "one MAT hit per fast-pathed packet");
    assert_eq!(s.flows_opened, 300);
    assert_eq!(s.rules_installed, 300, "one consolidation per flow");
}

#[test]
fn concurrent_snapshots_are_monotone_and_exact_at_quiescence() {
    // Periodic snapshots taken while NF threads are still writing their
    // shards: totals may lag but can never go backwards, and the final
    // quiescent snapshot is exact.
    use speedybox::platform::threaded::run_threaded_observed;
    let w = Workload::generate(&WorkloadConfig {
        flows: 200,
        median_packets: 5.0,
        seed: 77,
        ..WorkloadConfig::default()
    });
    let packets = w.packets();
    let total = packets.len();
    let mut last_packets = 0u64;
    let mut last_ops = 0u64;
    let mut fired = 0usize;
    let report = run_threaded_observed(ipfilter_chain(3, 50), packets, true, 256, 8, 40, |snap| {
        fired += 1;
        assert!(snap.packets >= last_packets, "packet count went backwards");
        let ops_sum: u64 = snap.ops.0.iter().sum();
        assert!(ops_sum >= last_ops, "op totals went backwards");
        // Packet records happen on the manager thread (the same
        // thread snapshotting), so delivery accounting is exact even
        // mid-run.
        assert_eq!(snap.delivered + snap.dropped, snap.packets);
        last_packets = snap.packets;
        last_ops = ops_sum;
    });
    assert!(fired >= 2, "periodic hook fired {fired} times");
    assert_eq!(report.snapshot.packets as usize, total);
    assert_eq!(report.snapshot.delivered as usize, report.delivered.len());
}
