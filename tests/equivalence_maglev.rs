//! §VII-C2: "Testing Maglev (containing events)".
//!
//! "We inject a flow with 10 packets into Maglev, and set the associated
//! event condition as 'change the destination IP from ip1 to ip2, from the
//! sixth packet' ... We check the packet outputs and find the destination
//! IP of pkt1-pkt5 is ip1, and the destination IP of pkt6-pkt10 is ip2.
//! The remaining headers and packet payloads going to ip2 are verified to
//! be true."

use std::net::Ipv4Addr;

use speedybox::nf::maglev::Maglev;
use speedybox::nf::Nf;
use speedybox::packet::{HeaderField, Packet, PacketBuilder};
use speedybox::platform::bess::BessChain;

fn lb(backends: usize) -> Maglev {
    Maglev::new(
        (0..backends)
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect::<Vec<(String, _)>>(),
        251,
    )
}

fn flow_packet(i: u32) -> Packet {
    PacketBuilder::tcp()
        .src("10.0.0.7:6000".parse().unwrap())
        .dst("10.99.99.99:80".parse().unwrap())
        .seq(i)
        .payload(format!("segment-{i}").as_bytes())
        .build()
}

fn backend_name(_maglev: &Maglev, ip: Ipv4Addr) -> String {
    format!("backend-{}", ip.octets()[3] - 1)
}

#[test]
fn destination_flips_exactly_at_packet_six() {
    let maglev = lb(4);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
    let mut chain = BessChain::speedybox(nfs);

    let mut outputs = Vec::new();
    for i in 1..=10u32 {
        if i == 6 {
            let fid = flow_packet(0).five_tuple().unwrap().fid();
            let addr = maglev.assigned_backend(fid).expect("tracked");
            maglev.fail_backend(&backend_name(&maglev, *addr.ip()));
        }
        let out = chain.process(flow_packet(i));
        outputs.push(out.packet.expect("all packets delivered"));
    }
    let ip1 = outputs[0].get_field(HeaderField::DstIp).unwrap().as_ipv4();
    let ip2 = outputs[9].get_field(HeaderField::DstIp).unwrap().as_ipv4();
    assert_ne!(ip1, ip2);
    for (i, p) in outputs.iter().enumerate() {
        let dst = p.get_field(HeaderField::DstIp).unwrap().as_ipv4();
        if i < 5 {
            assert_eq!(dst, ip1, "pkt{} must go to ip1", i + 1);
        } else {
            assert_eq!(dst, ip2, "pkt{} must go to ip2", i + 1);
        }
    }
}

#[test]
fn remaining_headers_and_payloads_intact_after_event() {
    let maglev = lb(4);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
    let mut chain = BessChain::speedybox(nfs);
    for i in 1..=5u32 {
        chain.process(flow_packet(i));
    }
    let fid = flow_packet(0).five_tuple().unwrap().fid();
    let addr = maglev.assigned_backend(fid).unwrap();
    maglev.fail_backend(&backend_name(&maglev, *addr.ip()));
    let out = chain.process(flow_packet(6)).packet.unwrap();
    // Payload untouched, source fields untouched, checksums valid.
    assert_eq!(out.payload().unwrap(), b"segment-6");
    assert_eq!(out.get_field(HeaderField::SrcIp).unwrap().as_ipv4(), Ipv4Addr::new(10, 0, 0, 7));
    assert_eq!(out.get_field(HeaderField::SrcPort).unwrap().as_port(), 6000);
    assert!(out.verify_checksums().unwrap());
}

#[test]
fn fast_path_and_slow_path_reroute_identically() {
    // The same failure injected into an uninstrumented chain must steer
    // packets 6-10 to the same backend the fast path picks (consistent
    // hashing is deterministic).
    let run = |speedybox: bool| -> Vec<Ipv4Addr> {
        let maglev = lb(4);
        let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
        let mut chain =
            if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
        let mut dsts = Vec::new();
        for i in 1..=10u32 {
            if i == 6 {
                let fid = flow_packet(0).five_tuple().unwrap().fid();
                let addr = maglev.assigned_backend(fid).expect("tracked");
                maglev.fail_backend(&backend_name(&maglev, *addr.ip()));
            }
            let out = chain.process(flow_packet(i)).packet.unwrap();
            dsts.push(out.get_field(HeaderField::DstIp).unwrap().as_ipv4());
        }
        dsts
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn double_failure_reroutes_twice() {
    // The Maglev event is recurring: if the re-routed backend also dies,
    // the flow moves again.
    let maglev = lb(4);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
    let mut chain = BessChain::speedybox(nfs);
    let fid = flow_packet(0).five_tuple().unwrap().fid();

    chain.process(flow_packet(1));
    let first = *maglev.assigned_backend(fid).unwrap().ip();
    maglev.fail_backend(&backend_name(&maglev, first));
    let out2 = chain.process(flow_packet(2)).packet.unwrap();
    let second = out2.get_field(HeaderField::DstIp).unwrap().as_ipv4();
    assert_ne!(second, first);
    maglev.fail_backend(&backend_name(&maglev, second));
    let out3 = chain.process(flow_packet(3)).packet.unwrap();
    let third = out3.get_field(HeaderField::DstIp).unwrap().as_ipv4();
    assert_ne!(third, second);
    assert_ne!(third, first);
}

#[test]
fn all_backends_dead_drops_on_fast_path() {
    let maglev = lb(2);
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
    let mut chain = BessChain::speedybox(nfs);
    chain.process(flow_packet(1));
    maglev.fail_backend("backend-0");
    maglev.fail_backend("backend-1");
    let out = chain.process(flow_packet(2));
    assert!(out.packet.is_none(), "no healthy backend: drop");
}
