//! §VII-C3: "Testing real world chains (comprehensive test)".
//!
//! "In the first chain's Maglev NF, we set events for 20% flows during
//! mid-stream. We find that there is no difference between the packet
//! output for both chains. Further, we compare the per-flow counters of
//! the Monitor and the log outputs of Snort. Results show that the value
//! of all counters and the Snort logs are all identical with and without
//! SpeedyBox."

use speedybox::packet::Packet;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::{chain1, chain2, Chain1Handles, Chain2Handles};
use speedybox::platform::onvm::OnvmChain;
use speedybox::traffic::{Workload, WorkloadConfig};

fn workload(flows: usize, seed: u64) -> Workload {
    Workload::generate(&WorkloadConfig {
        flows,
        median_packets: 6.0,
        payload_len: 120,
        suspicious_fraction: 0.25,
        seed,
        ..WorkloadConfig::default()
    })
}

struct Chain1Run {
    outputs: Vec<Packet>,
    handles: Chain1Handles,
    monitor_totals: (u64, u64),
}

/// Runs chain 1 over the workload, failing one Maglev backend mid-stream
/// (affecting ~20-25% of flows on a 4-backend pool).
fn run_chain1(packets: &[Packet], speedybox: bool) -> Chain1Run {
    let (nfs, handles) = chain1(4);
    let mut chain = if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
    let mut outputs = Vec::new();
    let midpoint = packets.len() / 2;
    for (i, p) in packets.iter().enumerate() {
        if i == midpoint {
            handles.maglev.fail_backend("backend-0");
        }
        // Monitor counters are sampled before FIN cleanup wipes them.
        if let Some(out) = chain.process(p.clone()).packet {
            outputs.push(out);
        }
    }
    let snapshot = handles.monitor.snapshot();
    let totals =
        snapshot.values().fold((0u64, 0u64), |acc, c| (acc.0 + c.packets, acc.1 + c.bytes));
    Chain1Run { outputs, handles, monitor_totals: totals }
}

#[test]
fn chain1_outputs_and_state_identical() {
    let w = workload(60, 11);
    let packets = w.packets();
    let orig = run_chain1(&packets, false);
    let fast = run_chain1(&packets, true);

    assert_eq!(orig.outputs.len(), fast.outputs.len(), "same delivery count");
    for (a, b) in orig.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes(), "byte-identical packet output");
    }
    // NAT mappings drained identically (flows closed by FIN).
    assert_eq!(orig.handles.nat.mapping_count(), fast.handles.nat.mapping_count());
    assert_eq!(orig.monitor_totals, fast.monitor_totals);
}

#[test]
fn chain2_outputs_logs_and_counters_identical() {
    let w = workload(60, 22);
    let packets = w.packets();

    let run = |speedybox: bool| -> (Vec<Vec<u8>>, Vec<String>, usize) {
        let (nfs, Chain2Handles { snort, monitor }) = chain2();
        let mut chain =
            if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
        let stats = chain.run(packets.iter().cloned());
        let outputs = stats.outputs.iter().map(|p| p.as_bytes().to_vec()).collect();
        let logs = snort.log().into_iter().map(|e| format!("{:?} {}", e.action, e.msg)).collect();
        (outputs, logs, monitor.flow_count())
    };

    let (out_a, logs_a, mon_a) = run(false);
    let (out_b, logs_b, mon_b) = run(true);
    assert!(!logs_a.is_empty(), "suspicious flows must trigger the IDS");
    assert_eq!(out_a, out_b);
    assert_eq!(logs_a, logs_b);
    assert_eq!(mon_a, mon_b);
}

#[test]
fn chain1_equivalence_holds_on_onvm_too() {
    let w = workload(40, 33);
    let packets = w.packets();

    let run = |speedybox: bool| -> Vec<Vec<u8>> {
        let (nfs, handles) = chain1(4);
        let mut chain =
            if speedybox { OnvmChain::speedybox(nfs) } else { OnvmChain::original(nfs) };
        let midpoint = packets.len() / 2;
        let mut outputs = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            if i == midpoint {
                handles.maglev.fail_backend("backend-1");
            }
            if let Some(out) = chain.process(p.clone()).packet {
                outputs.push(out.as_bytes().to_vec());
            }
        }
        outputs
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn chain1_speedybox_reduces_median_flow_time() {
    // The headline Fig 9 claim at test scale: p50 flow processing time
    // drops by roughly the paper's 35-45% band.
    use std::collections::HashMap;

    use speedybox::packet::Fid;
    use speedybox::stats::Summary;

    let w = workload(80, 44);
    let flow_times = |speedybox: bool| -> Summary {
        let (nfs, _) = chain1(4);
        let mut chain =
            if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };
        let mut per_flow: HashMap<Fid, u64> = HashMap::new();
        for (_, p) in &w.arrivals {
            let fid = p.five_tuple().unwrap().fid();
            let out = chain.process(p.clone());
            *per_flow.entry(fid).or_insert(0) += out.latency_cycles;
        }
        Summary::new(per_flow.values().map(|&c| c as f64))
    };
    let orig = flow_times(false);
    let fast = flow_times(true);
    let reduction = 1.0 - fast.median() / orig.median();
    assert!(
        (0.20..=0.60).contains(&reduction),
        "p50 reduction {reduction:.2} out of the plausible band (paper: 0.396)"
    );
}
