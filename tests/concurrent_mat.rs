//! Concurrency stress for the sharded Packet Classifier and Global MAT.
//!
//! The sharded tables claim to support concurrent manager threads: writers
//! block only their own shard, readers of different shards never contend,
//! and rule handles (`Arc<GlobalRule>`) stay valid across concurrent
//! installs/removals. These tests hammer `install` / `rule` /
//! `remove_flow` / `expire_idle` from ≥4 threads and assert the
//! linearizable outcomes: no lost or duplicated rules, hit counters that
//! sum exactly, and FID-collision detection that still routes colliding
//! flows to the slow path under contention.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use std::collections::{HashMap, HashSet};
use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::Arc;

use speedybox::mat::{
    GlobalMat, HeaderAction, LocalMat, NfId, OpCounter, PacketClass, PacketClassifier,
};
use speedybox::packet::{Fid, FiveTuple, Packet, PacketBuilder, Protocol};

const THREADS: usize = 4;
const FLOWS_PER_THREAD: u32 = 256;

/// A Global MAT over one Local MAT pre-seeded with a Forward rule for the
/// first `flows` FIDs, so `install` consolidates real content.
fn mat_with_locals(flows: u32, shards: usize) -> GlobalMat {
    let local = Arc::new(LocalMat::new(NfId::new(0)));
    for i in 0..flows {
        local.set_header_actions(Fid::new(i), vec![HeaderAction::Forward]);
    }
    GlobalMat::with_shards(vec![local], shards)
}

#[test]
fn concurrent_installs_lose_nothing() {
    let total = THREADS as u32 * FLOWS_PER_THREAD;
    let gm = mat_with_locals(total, 8);
    std::thread::scope(|s| {
        for t in 0..THREADS as u32 {
            let gm = &gm;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                for i in 0..FLOWS_PER_THREAD {
                    let fid = Fid::new(t * FLOWS_PER_THREAD + i);
                    gm.install(fid, &mut ops);
                    assert!(gm.contains(fid), "own install visible immediately");
                }
            });
        }
        // Concurrent readers sweeping the whole FID range must never see
        // torn state (they may see a rule or not, but must not panic or
        // observe len exceeding the final total).
        for _ in 0..2 {
            let gm = &gm;
            s.spawn(move || {
                for round in 0..20 {
                    let len = gm.len();
                    assert!(len <= total as usize, "len {len} exceeds installs (round {round})");
                    for i in (0..total).step_by(17) {
                        let _ = gm.rule(Fid::new(i));
                    }
                }
            });
        }
    });
    assert_eq!(gm.len(), total as usize, "every install retained exactly once");
    for i in 0..total {
        assert!(gm.contains(Fid::new(i)), "fid {i} lost");
    }
}

#[test]
fn concurrent_install_remove_partition() {
    // FIDs [0, total) start installed and get removed concurrently while
    // FIDs [total, 2*total) are installed concurrently — from interleaved
    // threads hitting shared shards.
    let total = THREADS as u32 * FLOWS_PER_THREAD;
    let gm = mat_with_locals(2 * total, 8);
    let mut ops = OpCounter::default();
    for i in 0..total {
        gm.install(Fid::new(i), &mut ops);
    }
    std::thread::scope(|s| {
        for t in 0..THREADS as u32 {
            let gm = &gm;
            s.spawn(move || {
                for i in 0..FLOWS_PER_THREAD {
                    gm.remove_flow(Fid::new(t * FLOWS_PER_THREAD + i));
                }
            });
            s.spawn(move || {
                let mut ops = OpCounter::default();
                for i in 0..FLOWS_PER_THREAD {
                    gm.install(Fid::new(total + t * FLOWS_PER_THREAD + i), &mut ops);
                }
            });
        }
    });
    assert_eq!(gm.len(), total as usize);
    for i in 0..total {
        assert!(!gm.contains(Fid::new(i)), "removed fid {i} resurrected");
        assert!(gm.contains(Fid::new(total + i)), "installed fid {} lost", total + i);
    }
}

#[test]
fn hit_counters_sum_exactly_across_threads() {
    const FLOWS: u32 = 64;
    const HITS_PER_THREAD: u64 = 200;
    let gm = mat_with_locals(FLOWS, 4);
    let mut ops = OpCounter::default();
    for i in 0..FLOWS {
        gm.install(Fid::new(i), &mut ops);
    }
    let thread_ops: Vec<OpCounter> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let gm = &gm;
                s.spawn(move || {
                    let mut ops = OpCounter::default();
                    for _ in 0..HITS_PER_THREAD {
                        for i in 0..FLOWS {
                            let rule = gm.prepare(Fid::new(i), &mut ops);
                            assert!(rule.is_some(), "installed rule must be found");
                        }
                    }
                    ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every fast-path hit landed on exactly one rule's counter.
    for i in 0..FLOWS {
        let rule = gm.rule(Fid::new(i)).expect("rule installed");
        assert_eq!(rule.hits(), THREADS as u64 * HITS_PER_THREAD, "fid {i}");
    }
    // And every thread accounted one MAT lookup per prepare.
    let lookups: u64 = thread_ops.iter().map(|o| o.mat_lookups).sum();
    assert_eq!(lookups, THREADS as u64 * HITS_PER_THREAD * u64::from(FLOWS));
}

/// Two distinct 5-tuples hashing to the same 20-bit FID (borrowed from the
/// fid_collision suite's search).
fn colliding_tuples() -> (FiveTuple, FiveTuple) {
    let mut seen: HashMap<Fid, FiveTuple> = HashMap::new();
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            for port in [1000u16, 2000, 3000, 4000] {
                let t = FiveTuple::new(
                    Ipv4Addr::new(10, 5, a, b),
                    port,
                    Ipv4Addr::new(10, 0, 0, 2),
                    80,
                    Protocol::Tcp,
                );
                if let Some(prev) = seen.insert(t.fid(), t) {
                    if prev != t {
                        return (prev, t);
                    }
                }
            }
        }
    }
    panic!("no collision found");
}

fn packet_for(t: &FiveTuple, i: u32) -> Packet {
    let mut b = PacketBuilder::tcp();
    b.src(SocketAddrV4::new(t.src_ip, t.src_port))
        .dst(SocketAddrV4::new(t.dst_ip, t.dst_port))
        .seq(i)
        .payload(format!("pkt-{i}").as_bytes());
    b.build()
}

#[test]
fn collision_detected_under_concurrent_classification() {
    let (ta, tb) = colliding_tuples();
    let classifier = PacketClassifier::with_shards(8);
    // The owner flow claims the FID slot first.
    let mut ops = OpCounter::default();
    let mut first = packet_for(&ta, 0);
    let c = classifier.classify(&mut first, &mut ops).unwrap();
    assert_eq!(c.class, PacketClass::Initial);
    std::thread::scope(|s| {
        // Owner traffic and colliding traffic classified concurrently.
        for _ in 0..THREADS / 2 {
            let classifier = &classifier;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                for i in 1..100u32 {
                    let mut p = packet_for(&ta, i);
                    let c = classifier.classify(&mut p, &mut ops).unwrap();
                    assert_eq!(c.class, PacketClass::Subsequent, "owner stays on fast path");
                }
            });
        }
        for _ in 0..THREADS / 2 {
            let classifier = &classifier;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                for i in 0..100u32 {
                    let mut p = packet_for(&tb, i);
                    let c = classifier.classify(&mut p, &mut ops).unwrap();
                    assert_eq!(
                        c.class,
                        PacketClass::Collision,
                        "colliding flow must ride the slow path"
                    );
                }
            });
        }
    });
    // The slot still belongs to the owner, never the colliding tuple.
    assert_eq!(classifier.peek(&ta), PacketClass::Subsequent);
    assert_eq!(classifier.peek(&tb), PacketClass::Collision);
    assert_eq!(classifier.len(), 1, "collision never created a second slot");
}

#[test]
fn affinity_memo_invalidated_by_event_under_churn() {
    // Regression for the batch fast path's flow-affinity memo: when an
    // Event Table entry fires mid-batch and re-consolidates the rule, the
    // memoized `Arc<GlobalRule>` for that FID is stale and must be
    // dropped — otherwise every later same-flow packet in the batch would
    // be served the pre-event rule. Install/remove churn on disjoint FIDs
    // runs concurrently, so the shard locks and prefetch snapshot are
    // exercised while the memo is being invalidated (the sim harness's
    // `churn@` fault clause, pinned as a deterministic test).
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use speedybox::mat::state_fn::PayloadAccess;
    use speedybox::mat::{Event, FastPathOutcome, RulePatch, StateFunction};

    const CHURN_FIDS: u32 = 256;
    const BATCH: usize = 64;
    const THRESHOLD: u64 = 5;

    let local = Arc::new(LocalMat::new(NfId::new(0)));
    for i in 0..CHURN_FIDS {
        local.set_header_actions(Fid::new(i), vec![HeaderAction::Forward]);
    }
    let flow = Fid::new(2000);
    local.set_header_actions(flow, vec![HeaderAction::Forward]);
    let counter = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&counter);
    let mut ops = OpCounter::default();
    local.add_state_function(
        flow,
        StateFunction::new("count", PayloadAccess::Ignore, move |ctx| {
            c.fetch_add(1, Ordering::Relaxed);
            ctx.ops.state_updates += 1;
        }),
        &mut ops,
    );
    let gm = GlobalMat::with_shards(vec![local], 8);
    let c2 = Arc::clone(&counter);
    gm.events().register(Event::new(
        flow,
        NfId::new(0),
        "threshold",
        move |_| c2.load(Ordering::Relaxed) > THRESHOLD,
        |_| RulePatch::set_action(HeaderAction::Drop),
    ));
    gm.install(flow, &mut ops);

    let stop = AtomicBool::new(false);
    let outcomes = std::thread::scope(|s| {
        for t in 0..THREADS as u32 {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let fid = Fid::new(i % CHURN_FIDS);
                    gm.install(fid, &mut ops);
                    gm.remove_flow(fid);
                    i = i.wrapping_add(THREADS as u32);
                    std::thread::yield_now();
                }
            });
        }
        // One batch of same-flow packets: the memo engages from packet 2
        // onward, the event fires once the counter crosses the threshold.
        let mut packets: Vec<Packet> = (0..BATCH as u32)
            .map(|i| {
                let mut p = packet_for(
                    &FiveTuple::new(
                        Ipv4Addr::new(10, 6, 0, 1),
                        5000,
                        Ipv4Addr::new(10, 0, 0, 2),
                        80,
                        Protocol::Tcp,
                    ),
                    i,
                );
                p.set_fid(flow);
                p
            })
            .collect();
        let mut per_ops: Vec<OpCounter> = vec![OpCounter::default(); BATCH];
        let outcomes = gm.process_batch(&mut packets, &mut per_ops).unwrap();
        stop.store(true, Ordering::Relaxed);
        outcomes
    });

    // The state function runs per forwarded packet; the event predicate is
    // checked before each packet's header action, so packets 0..=THRESHOLD
    // forward and every later packet must hit the patched Drop rule — a
    // stale memo would keep forwarding them.
    for (i, o) in outcomes.iter().enumerate() {
        let expected = if (i as u64) <= THRESHOLD {
            FastPathOutcome::Forwarded
        } else {
            FastPathOutcome::Dropped
        };
        assert_eq!(*o, expected, "packet {i}");
    }
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), THRESHOLD + 1);
    // Churned FIDs settled: either state is fine, but the flow's own rule
    // must still be installed (remove_flow was never called for it).
    assert!(gm.contains(flow));
}

/// Publication-race stress for the wait-free generation swap: four
/// installer/remover threads churn a disjoint FID range at full tilt while
/// reader threads run `process_batch` over a stable rule set.
///
/// Two contracts are enforced:
///
/// * **stale-but-consistent** — the stable rules are in *every* published
///   generation, so a reader observing `NoRule` for one has seen a
///   partially built table;
/// * **wait-free reads** — a timed watchdog asserts the readers keep
///   completing batches while installers hold the writer lock; a lookup
///   that blocked on an installer would stall the progress counter.
///
/// Once churn stops and the readers are gone, the retired-generation
/// backlog must drain to zero — publication may not leak old tables.
#[test]
fn publication_race_readers_never_block_or_tear() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use speedybox::mat::FastPathOutcome;

    const STABLE: u32 = 64;
    const CHURN_FIDS: u32 = 512;
    const STABLE_BASE: u32 = 10_000;

    let local = Arc::new(LocalMat::new(NfId::new(0)));
    for i in 0..CHURN_FIDS {
        local.set_header_actions(Fid::new(i), vec![HeaderAction::Forward]);
    }
    for i in 0..STABLE {
        local.set_header_actions(Fid::new(STABLE_BASE + i), vec![HeaderAction::Forward]);
    }
    let gm = GlobalMat::with_shards(vec![local], 8);
    let mut ops = OpCounter::default();
    for i in 0..STABLE {
        gm.install(Fid::new(STABLE_BASE + i), &mut ops);
    }

    let stop = AtomicBool::new(false);
    let progress = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS as u32 {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let fid = Fid::new(i % CHURN_FIDS);
                    gm.install(fid, &mut ops);
                    gm.remove_flow(fid);
                    i = i.wrapping_add(THREADS as u32);
                }
            });
        }
        for _ in 0..2 {
            let gm = &gm;
            let stop = &stop;
            let progress = &progress;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut batch: Vec<Packet> = (0..STABLE)
                        .map(|i| {
                            let mut p = packet_for(
                                &FiveTuple::new(
                                    Ipv4Addr::new(10, 7, 0, 1),
                                    6000,
                                    Ipv4Addr::new(10, 0, 0, 2),
                                    80,
                                    Protocol::Tcp,
                                ),
                                i,
                            );
                            p.set_fid(Fid::new(STABLE_BASE + i));
                            p
                        })
                        .collect();
                    let mut per_ops = vec![OpCounter::default(); batch.len()];
                    let outcomes = gm.process_batch(&mut batch, &mut per_ops).unwrap();
                    for (i, o) in outcomes.iter().enumerate() {
                        assert_eq!(
                            *o,
                            FastPathOutcome::Forwarded,
                            "stable fid {} vanished mid-churn: reader saw a torn generation",
                            STABLE_BASE + i as u32
                        );
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Watchdog: five windows; in each, the readers must complete at
        // least one more batch within the deadline. Generous bound so only
        // genuine blocking (a reader parked on the writer lock) trips it.
        let mut last = 0u64;
        for window in 0..5 {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                let now = progress.load(Ordering::Relaxed);
                if now > last {
                    last = now;
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "readers stalled for 5s during churn (window {window}): lookups blocked"
                );
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // All threads joined: every retired generation is reclaimable now, and
    // the backlog must drain completely — bounded memory under churn.
    gm.collect_generations();
    assert_eq!(gm.pending_generations(), 0, "retired generations leak after churn settles");
    for i in 0..STABLE {
        assert!(gm.contains(Fid::new(STABLE_BASE + i)), "stable rule {i} lost");
    }
}

/// Classifier-side generation retirement: expiring idle flows republishes
/// the flow table; once no reader is active the retired generations must
/// be collectable down to zero.
#[test]
fn classifier_generations_drain_after_expiry() {
    let classifier = PacketClassifier::with_shards(4);
    let mut ops = OpCounter::default();
    for f in 0..128u16 {
        let mut p = PacketBuilder::tcp()
            .src(format!("10.8.0.1:{}", 1024 + f).parse().unwrap())
            .dst("10.8.0.2:80".parse().unwrap())
            .build();
        classifier.classify(&mut p, &mut ops).unwrap();
    }
    // Advance the clock, expire everything, then prove the old table
    // generations are actually freed rather than retained forever.
    for _ in 0..64 {
        let mut p = PacketBuilder::tcp()
            .src("10.8.9.9:4000".parse().unwrap())
            .dst("10.8.0.2:80".parse().unwrap())
            .build();
        classifier.classify(&mut p, &mut ops).unwrap();
    }
    let expired = classifier.expire_idle(32);
    assert!(!expired.is_empty());
    classifier.collect_generations();
    assert_eq!(classifier.pending_generations(), 0, "flow-table generations leak");
}

/// Eviction racing rewrite racing install: a capacity-bounded Global MAT
/// under four threads — an installer driving safety-net LRU evictions, a
/// remover tearing flows down (including the event flow), an event thread
/// whose recurring event rewrites its rule on every `prepare`, and a
/// reader sweeping lookups while draining retired generations.
///
/// The contract under test is the eviction-vs-rewrite atomicity guarantee:
/// a rewrite that loses to a concurrent removal must be abandoned whole —
/// `prepare` returns `None` and the rule is **not** resurrected in the
/// table. After churn settles, the capacity bound has held throughout and
/// the retired-generation backlog drains to exactly zero.
#[test]
fn evict_vs_install_vs_event_fire_settles_with_zero_leak() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use speedybox::mat::{Event, RulePatch};

    const CAPACITY: usize = 64;
    const CHURN_FIDS: u32 = 256;
    const INSTALLS: u32 = 20_000;
    let event_fid = Fid::new(9000);

    let local = Arc::new(LocalMat::new(NfId::new(0)));
    for i in 0..CHURN_FIDS {
        local.set_header_actions(Fid::new(i), vec![HeaderAction::Forward]);
    }
    local.set_header_actions(event_fid, vec![HeaderAction::Forward]);
    let gm = GlobalMat::with_limits(vec![Arc::clone(&local)], 8, CAPACITY);
    let register_event = |gm: &GlobalMat| {
        gm.events().register(
            Event::new(
                event_fid,
                NfId::new(0),
                "always",
                |_| true,
                |_| RulePatch::set_action(HeaderAction::Forward),
            )
            .recurring(),
        );
    };
    register_event(&gm);
    let mut ops = OpCounter::default();
    gm.install(event_fid, &mut ops);

    let stop = AtomicBool::new(false);
    let rewrites = AtomicU64::new(0);
    let lost_races = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Installer: pounds the bounded table far past capacity, so every
        // insert once full evicts the LRU victim with full teardown.
        {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                for i in 0..INSTALLS {
                    gm.install(Fid::new(i % CHURN_FIDS), &mut ops);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Remover: tears down churn flows, and periodically the event flow
        // itself — the direct eviction-vs-rewrite collision.
        {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    gm.remove_flow(Fid::new(i % CHURN_FIDS));
                    if i.is_multiple_of(64) {
                        gm.remove_flow(event_fid);
                    }
                    i = i.wrapping_add(1);
                }
            });
        }
        // Event thread: every successful prepare fires the recurring event
        // and republishes the rule. A None means the removal won — the
        // rewrite was abandoned whole, so re-seed and start over.
        {
            let gm = &gm;
            let local = &local;
            let stop = &stop;
            let rewrites = &rewrites;
            let lost_races = &lost_races;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                while !stop.load(Ordering::Relaxed) {
                    match gm.prepare(event_fid, &mut ops) {
                        Some(_) => {
                            rewrites.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // The losing rewrite must not have resurrected
                            // the table entry.
                            assert!(
                                !gm.contains(event_fid),
                                "abandoned rewrite left the rule installed"
                            );
                            lost_races.fetch_add(1, Ordering::Relaxed);
                            local.set_header_actions(event_fid, vec![HeaderAction::Forward]);
                            register_event(gm);
                            gm.install(event_fid, &mut ops);
                        }
                    }
                }
            });
        }
        // Reader: sweeps wait-free lookups, checks the capacity bound
        // continuously, and drains retired generations opportunistically
        // so the backlog stays bounded mid-churn.
        {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let len = gm.len();
                    assert!(len <= CAPACITY, "table grew past its bound: {len} > {CAPACITY}");
                    for i in (0..CHURN_FIDS).step_by(19) {
                        let _ = gm.rule(Fid::new(i));
                    }
                    gm.collect_generations();
                }
            });
        }
    });

    // The stress actually exercised both sides of the race.
    assert!(rewrites.load(Ordering::Relaxed) > 0, "no event rewrite ever fired");
    assert!(lost_races.load(Ordering::Relaxed) > 0, "no rewrite ever lost to a removal");
    assert!(gm.len() <= CAPACITY);
    // Zero generation leak after settle: with all threads joined, every
    // retired rule slot is provably unreferenced and must be reclaimed.
    gm.collect_generations();
    assert_eq!(gm.pending_generations(), 0, "retired generations leak after evict churn");
    // The event flow finished in a coherent state: either fully installed
    // (rule resolvable) or fully gone (no table entry).
    if gm.contains(event_fid) {
        assert!(gm.rule(event_fid).is_some());
    } else {
        assert!(gm.rule(event_fid).is_none());
    }
}

/// Quarantine-flip racing install/remove churn: the crash-recovery
/// protocol flips the Global MAT's quarantine mask while manager threads
/// are mid-install and readers are mid-batch. The mask is a pure
/// fast-path *gate* — it must never perturb table contents, block a
/// wait-free reader, or leak a generation.
///
/// Contracts enforced:
///
/// * installed rules keep executing while quarantined — masking is the
///   platform's classification decision, not a table mutation;
/// * the mask itself is exact: after every flipper finishes its
///   balanced quarantine/unquarantine pairs, the mask reads zero;
/// * after churn settles, the stable rule set is intact, churn FIDs
///   are gone, and the retired-generation backlog drains to zero.
#[test]
fn quarantine_flip_vs_install_churn_leaks_nothing() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use speedybox::mat::FastPathOutcome;

    const STABLE: u32 = 48;
    const CHURN_FIDS: u32 = 384;
    const STABLE_BASE: u32 = 20_000;
    const FLIPS: u64 = 4_000;

    let local = Arc::new(LocalMat::new(NfId::new(0)));
    for i in 0..CHURN_FIDS {
        local.set_header_actions(Fid::new(i), vec![HeaderAction::Forward]);
    }
    for i in 0..STABLE {
        local.set_header_actions(Fid::new(STABLE_BASE + i), vec![HeaderAction::Forward]);
    }
    let gm = GlobalMat::with_shards(vec![local], 8);
    let mut ops = OpCounter::default();
    for i in 0..STABLE {
        gm.install(Fid::new(STABLE_BASE + i), &mut ops);
    }

    let stop = AtomicBool::new(false);
    let quarantined_batches = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Four churn threads: install + remove over a shared FID range,
        // exactly the traffic pattern a recovery re-record storm creates.
        for t in 0..THREADS as u32 {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut ops = OpCounter::default();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let fid = Fid::new(i % CHURN_FIDS);
                    gm.install(fid, &mut ops);
                    gm.remove_flow(fid);
                    i = i.wrapping_add(THREADS as u32);
                }
            });
        }
        // Two flippers on distinct chain positions: balanced pairs for
        // the whole stress window, so lost updates (a fetch_and
        // clobbering a concurrent fetch_or on another bit) would leave
        // the mask non-zero at the end.
        for nf in [0usize, 1] {
            let gm = &gm;
            let stop = &stop;
            s.spawn(move || {
                let mut flips = 0u64;
                while !stop.load(Ordering::Relaxed) || flips < FLIPS {
                    gm.quarantine_nf(nf);
                    assert!(gm.is_quarantined(), "own quarantine bit visible immediately");
                    gm.unquarantine_nf(nf);
                    flips += 1;
                }
            });
        }
        // Reader: batches over the stable set; installed rules must keep
        // executing regardless of the mask state observed mid-batch.
        {
            let gm = &gm;
            let stop = &stop;
            let quarantined_batches = &quarantined_batches;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let was_quarantined = gm.is_quarantined();
                    let mut batch: Vec<Packet> = (0..STABLE)
                        .map(|i| {
                            let mut p = packet_for(
                                &FiveTuple::new(
                                    Ipv4Addr::new(10, 11, 0, 1),
                                    7000,
                                    Ipv4Addr::new(10, 0, 0, 2),
                                    80,
                                    Protocol::Tcp,
                                ),
                                i,
                            );
                            p.set_fid(Fid::new(STABLE_BASE + i));
                            p
                        })
                        .collect();
                    let mut per_ops = vec![OpCounter::default(); batch.len()];
                    let outcomes = gm.process_batch(&mut batch, &mut per_ops).unwrap();
                    for (i, o) in outcomes.iter().enumerate() {
                        assert_eq!(
                            *o,
                            FastPathOutcome::Forwarded,
                            "stable fid {} failed mid-flip: mask perturbed the table",
                            STABLE_BASE + i as u32
                        );
                    }
                    if was_quarantined {
                        quarantined_batches.fetch_add(1, Ordering::Relaxed);
                    }
                    gm.collect_generations();
                }
            });
        }
        // Run the churn for as long as the flippers need, plus a beat.
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(gm.quarantine_mask(), 0, "balanced flips must cancel: a bit-flip was lost");
    assert!(
        quarantined_batches.load(Ordering::Relaxed) > 0,
        "no batch ever overlapped a quarantine window: stress did not interleave"
    );
    gm.collect_generations();
    assert_eq!(gm.pending_generations(), 0, "retired generations leak after quarantine churn");
    for i in 0..STABLE {
        assert!(gm.contains(Fid::new(STABLE_BASE + i)), "stable rule {i} lost");
    }
}

#[test]
fn concurrent_expire_idle_expires_each_flow_once() {
    let classifier = PacketClassifier::with_shards(4);
    const FLOWS: u16 = 200;
    let mut ops = OpCounter::default();
    for f in 0..FLOWS {
        let mut p = PacketBuilder::tcp()
            .src(format!("10.9.0.1:{}", 1024 + f).parse().unwrap())
            .dst("10.9.0.2:80".parse().unwrap())
            .build();
        classifier.classify(&mut p, &mut ops).unwrap();
    }
    let tracked = classifier.len();
    assert!(tracked > 0);
    // Advance the clock past every flow's last_seen so all are idle, then
    // race expirations against fresh classifications.
    for _ in 0..64 {
        let mut p = PacketBuilder::tcp()
            .src("10.9.9.9:4000".parse().unwrap())
            .dst("10.9.0.2:80".parse().unwrap())
            .build();
        classifier.classify(&mut p, &mut ops).unwrap();
    }
    let expired: Vec<Vec<Fid>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let classifier = &classifier;
                s.spawn(move || classifier.expire_idle(32))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut all: Vec<Fid> = expired.into_iter().flatten().collect();
    let unique: HashSet<Fid> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "a flow was expired by two threads at once");
    all.sort_by_key(|f| f.value());
    // Exactly the idle flows went, each once; the fresh flow survives.
    assert_eq!(all.len(), tracked, "all idle flows expired exactly once");
    assert_eq!(classifier.len(), 1, "only the clock-advancing flow remains");
    for fid in all {
        assert_eq!(classifier.packets_seen(fid), 0, "expired flow fully forgotten");
    }
}
